//! Stages and the context through which they accept and convey buffers.
//!
//! The programmer writes a *synchronous* stage — a plain function or a
//! [`Stage`] implementation whose `run` method loops accepting buffers,
//! working on them, and conveying them downstream.  FG runs every stage in
//! its own thread, so stages execute asynchronously and a stage blocked on a
//! high-latency operation (or on an empty queue) yields the CPU to the other
//! stages (the paper, §II).
//!
//! Three accept flavors mirror the paper's three pipeline shapes:
//!
//! * [`StageCtx::accept`] — the stage belongs to exactly one pipeline
//!   (ordinary linear pipelines, §II).
//! * [`StageCtx::accept_from`] — the stage is a *common stage* of several
//!   intersecting pipelines and must name the pipeline to accept from (§IV:
//!   "because the common stage has multiple predecessors, in order to accept
//!   a buffer, it must specify which pipeline to accept from").
//! * [`StageCtx::accept_any`] — the stage is *virtual*: many identical
//!   stages share one thread and one input queue, and buffers from any of
//!   the member pipelines arrive interleaved (§IV, Figure 5(b)).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::buffer::{Buffer, PipelineId};
use crate::error::{FgError, Result};
use crate::queue::{Item, Queue};

/// How many rounds a pipeline's source runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rounds {
    /// The source injects exactly this many buffers, then the caboose.
    Count(u64),
    /// The source keeps injecting recycled buffers until some stage calls
    /// [`StageCtx::stop`] for this pipeline (used when the stream length is
    /// known only dynamically, e.g. a receive pipeline).
    UntilStopped,
}

/// A pipeline stage.
///
/// `run` is called exactly once, on the stage's own thread.  It should loop
/// accepting buffers until the stream ends (accept returns `Ok(None)`), then
/// return.  Returning early is allowed: the runtime stops `UntilStopped`
/// pipelines the stage belongs to, drains its inputs, and propagates the
/// caboose downstream.
pub trait Stage: Send {
    /// Execute the stage to completion.
    fn run(&mut self, ctx: &mut StageCtx) -> Result<()>;
}

impl<F> Stage for F
where
    F: FnMut(&mut StageCtx) -> Result<()> + Send,
{
    fn run(&mut self, ctx: &mut StageCtx) -> Result<()> {
        self(ctx)
    }
}

/// A per-buffer stage: the classic FG programming model.
///
/// The runtime loops `accept → f(buffer, ctx) → convey` until the stream
/// ends.  Works unchanged for ordinary and virtual stages (it uses
/// [`StageCtx::accept_auto`]).
pub struct MapStage<F> {
    f: F,
}

impl<F> Stage for MapStage<F>
where
    F: FnMut(&mut Buffer, &mut StageCtx) -> Result<()> + Send,
{
    fn run(&mut self, ctx: &mut StageCtx) -> Result<()> {
        while let Some(mut buf) = ctx.accept_auto()? {
            (self.f)(&mut buf, ctx)?;
            ctx.convey(buf)?;
        }
        Ok(())
    }
}

/// Build a boxed per-buffer stage from a closure.
///
/// ```
/// use fg_core::{map_stage, Buffer, StageCtx};
/// let double = map_stage(|buf: &mut Buffer, _ctx: &mut StageCtx| {
///     for b in buf.filled_mut() {
///         *b = b.wrapping_mul(2);
///     }
///     Ok(())
/// });
/// # let _ = double;
/// ```
pub fn map_stage<F>(f: F) -> Box<dyn Stage>
where
    F: FnMut(&mut Buffer, &mut StageCtx) -> Result<()> + Send + 'static,
{
    Box::new(MapStage { f })
}

/// A stage that restores round order downstream of a *replicated* stage.
///
/// Replicas finish buffers out of order; this stage stashes early arrivals
/// and conveys rounds `0, 1, 2, ...` in order (FG's join).  It requires
/// every round to arrive exactly once (replicated map stages guarantee
/// that), and its pipeline needs enough buffers for the stash — at least
/// the replica count.
pub fn reorder_stage() -> Box<dyn Stage> {
    let mut stash: std::collections::HashMap<u64, Buffer> = std::collections::HashMap::new();
    let mut next = 0u64;
    Box::new(move |ctx: &mut StageCtx| loop {
        match ctx.accept()? {
            Some(buf) => {
                stash.insert(buf.round(), buf);
                while let Some(b) = stash.remove(&next) {
                    ctx.convey(b)?;
                    next += 1;
                }
            }
            None => {
                if !stash.is_empty() {
                    return Err(FgError::Usage(format!(
                            "reorder stage ended with {} stashed rounds                              (round {} never arrived)",
                            stash.len(),
                            next
                        )));
                }
                return Ok(());
            }
        }
    })
}

/// Shared shutdown machinery: set once a stage fails, and closes every queue
/// in the program so all threads unblock.
pub(crate) struct Registry {
    queues: parking_lot::Mutex<Vec<Arc<Queue>>>,
    /// Replica groups whose ordered-emission waiters must be woken on
    /// cancel (they park on the group's condvar, not on a queue).
    groups: parking_lot::Mutex<Vec<Arc<ReplicaGroup>>>,
    cancelled: AtomicBool,
    error: parking_lot::Mutex<Option<FgError>>,
}

impl Registry {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Registry {
            queues: parking_lot::Mutex::new(Vec::new()),
            groups: parking_lot::Mutex::new(Vec::new()),
            cancelled: AtomicBool::new(false),
            error: parking_lot::Mutex::new(None),
        })
    }

    pub(crate) fn register(&self, q: Arc<Queue>) {
        self.queues.lock().push(q);
    }

    pub(crate) fn register_group(&self, g: Arc<ReplicaGroup>) {
        self.groups.lock().push(g);
    }

    /// Record the root-cause error (first wins) and tear everything down.
    pub(crate) fn cancel(&self, err: FgError) {
        {
            let mut slot = self.error.lock();
            if slot.is_none() && !err.is_cancelled() {
                *slot = Some(err);
            }
        }
        self.cancelled.store(true, Ordering::SeqCst);
        for q in self.queues.lock().iter() {
            q.close();
        }
        for g in self.groups.lock().iter() {
            g.cancel_wake();
        }
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    pub(crate) fn take_error(&self) -> Option<FgError> {
        self.error.lock().take()
    }

    /// Depth statistics of every queue the program created, for the final
    /// [`Report`](crate::Report).
    pub(crate) fn queue_depths(&self) -> Vec<crate::stats::QueueDepth> {
        self.queues
            .lock()
            .iter()
            .map(|q| crate::stats::QueueDepth {
                name: q.name().to_string(),
                capacity: q.capacity(),
                max_depth: q.max_depth(),
                spsc: q.is_spsc(),
                flavor: q.flavor_label().to_string(),
            })
            .collect()
    }

    /// Live (approximate) depth of every queue, for watchdog post-mortems.
    pub(crate) fn live_queue_depths(&self) -> Vec<crate::trace::QueuePostmortem> {
        self.queues
            .lock()
            .iter()
            .map(|q| crate::trace::QueuePostmortem {
                queue: q.name().to_string(),
                depth: q.depth(),
                capacity: q.capacity(),
            })
            .collect()
    }

    /// Every ordered farm's turnstile position, for watchdog post-mortems.
    pub(crate) fn turnstiles(&self) -> Vec<crate::trace::TurnstilePostmortem> {
        self.groups
            .lock()
            .iter()
            .flat_map(|g| {
                let group = g.name().to_string();
                g.turnstile_positions()
                    .into_iter()
                    .map(move |(p, next_round)| crate::trace::TurnstilePostmortem {
                        group: group.clone(),
                        pipeline: p.0,
                        next_round,
                    })
            })
            .collect()
    }
}

/// Per-pipeline stop flag shared between stages and the pipeline's source.
pub(crate) struct StopFlag {
    stopped: AtomicBool,
    /// The recycle queue the source blocks on; closed on stop so the source
    /// wakes up promptly.
    recycle: parking_lot::Mutex<Option<Arc<Queue>>>,
}

impl StopFlag {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(StopFlag {
            stopped: AtomicBool::new(false),
            recycle: parking_lot::Mutex::new(None),
        })
    }

    pub(crate) fn attach_recycle(&self, q: Arc<Queue>) {
        *self.recycle.lock() = Some(q);
    }

    pub(crate) fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        if let Some(q) = self.recycle.lock().as_ref() {
            q.close();
        }
    }

    pub(crate) fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }
}

/// Shared state of a *replicated* stage (FG's fork–join): n replica
/// threads share the stage's input and output queues, so buffers fan out
/// to whichever replica is free and rejoin downstream.  The caboose must
/// only travel downstream after *every* replica has finished, so replicas
/// pass it around like a poison pill until the last one consumes it.
///
/// An *ordered* group (a worker farm built with
/// [`Program::workers`](crate::Program::workers)) additionally serializes
/// emission: each replica, before conveying (or discarding) round `r`,
/// waits until every earlier round has been emitted, so downstream stages
/// observe rounds in order without a separate [`reorder_stage`].  An
/// unordered group (built with `add_replicated_stage`) emits as replicas
/// finish, out of round order.
pub(crate) struct ReplicaGroup {
    /// Stage name the group replicates (diagnostics).
    name: String,
    /// Per pipeline: how many replicas have not yet seen the caboose.
    remaining: parking_lot::Mutex<std::collections::HashMap<PipelineId, usize>>,
    pub(crate) replicas: usize,
    /// Whether emission is round-ordered (worker farm) or free-for-all.
    ordered: bool,
    /// Per pipeline: the next round allowed to emit (ordered groups only).
    next_round: parking_lot::Mutex<std::collections::HashMap<PipelineId, u64>>,
    emit_turn: parking_lot::Condvar,
    /// Set on program teardown so emission waiters unblock.
    cancelled: AtomicBool,
    /// How many replicas are currently *admitted* to pop input (the farm's
    /// live width).  Replicas with index `>= active` park at the admission
    /// gate between rounds, so a controller can grow or shrink the farm at
    /// round boundaries without touching threads.
    active: AtomicUsize,
    /// Set once any replica observes a caboose: parked replicas must wake
    /// and join the poison-pill relay so end-of-stream reaches all of them.
    draining: AtomicBool,
    /// Guards the admission gate's condvar.
    admission: parking_lot::Mutex<()>,
    admit: parking_lot::Condvar,
}

impl ReplicaGroup {
    pub(crate) fn new(name: impl Into<String>, replicas: usize, ordered: bool) -> Arc<Self> {
        Arc::new(ReplicaGroup {
            name: name.into(),
            remaining: parking_lot::Mutex::new(std::collections::HashMap::new()),
            replicas,
            ordered,
            next_round: parking_lot::Mutex::new(std::collections::HashMap::new()),
            emit_turn: parking_lot::Condvar::new(),
            cancelled: AtomicBool::new(false),
            active: AtomicUsize::new(replicas),
            draining: AtomicBool::new(false),
            admission: parking_lot::Mutex::new(()),
            admit: parking_lot::Condvar::new(),
        })
    }

    /// The declared replica count (the farm's maximum width).
    pub(crate) fn replica_count(&self) -> usize {
        self.replicas
    }

    /// How many replicas are currently admitted.
    pub(crate) fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Set the live width to `n` (clamped to `1..=replicas`), waking any
    /// replica the new width admits.  Shrinking never interrupts a replica
    /// mid-buffer: a demoted replica finishes (and emits) the round it
    /// holds, then parks before its next accept — so width changes land
    /// exactly at round boundaries.  Returns the applied width.
    pub(crate) fn set_active(&self, n: usize) -> usize {
        let n = n.clamp(1, self.replicas);
        self.active.store(n, Ordering::SeqCst);
        let _guard = self.admission.lock();
        self.admit.notify_all();
        n
    }

    /// Block replica `index` until it is admitted (its index is below the
    /// live width), the group starts draining, or the program is torn down.
    fn await_admission(&self, index: usize) -> Result<()> {
        let admitted = |g: &Self| {
            index < g.active()
                || g.draining.load(Ordering::SeqCst)
                || g.cancelled.load(Ordering::SeqCst)
        };
        if admitted(self) {
            // Fast path: no lock when running at full width.
        } else {
            let mut guard = self.admission.lock();
            while !admitted(self) {
                self.admit.wait(&mut guard);
            }
        }
        if self.cancelled.load(Ordering::SeqCst) {
            return Err(FgError::Cancelled);
        }
        Ok(())
    }

    /// Wake parked replicas so they can relay the caboose.
    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            let _guard = self.admission.lock();
            self.admit.notify_all();
        }
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// `(pipeline, next round allowed to emit)` for every pipeline an
    /// ordered group has seen; empty for unordered groups.
    pub(crate) fn turnstile_positions(&self) -> Vec<(PipelineId, u64)> {
        if !self.ordered {
            return Vec::new();
        }
        self.next_round
            .lock()
            .iter()
            .map(|(p, r)| (*p, *r))
            .collect()
    }

    /// Record that one replica observed pipeline `p`'s caboose; returns
    /// true iff it was the last replica (which then owns forwarding).
    fn observe_caboose(&self, p: PipelineId) -> bool {
        // End of stream: every replica — parked ones included — must see
        // the caboose for the poison-pill relay to terminate.
        self.begin_drain();
        let mut remaining = self.remaining.lock();
        let slot = remaining.entry(p).or_insert(self.replicas);
        *slot -= 1;
        *slot == 0
    }

    /// Block until round `round` of pipeline `p` is the next to emit.
    /// No-op for unordered groups.
    fn await_turn(&self, stage: &str, p: PipelineId, round: u64) -> Result<()> {
        if !self.ordered {
            return Ok(());
        }
        let mut next = self.next_round.lock();
        loop {
            let turn = *next.entry(p).or_insert(0);
            if round < turn {
                return Err(FgError::Usage(format!(
                    "replicated stage `{stage}` emitted round {round} of {p} \
                     twice (round {turn} is next); ordered farms emit exactly \
                     one buffer per round"
                )));
            }
            if round == turn {
                return Ok(());
            }
            if self.cancelled.load(Ordering::SeqCst) {
                return Err(FgError::Cancelled);
            }
            self.emit_turn.wait(&mut next);
        }
    }

    /// Mark round `round` of pipeline `p` emitted, releasing the waiter for
    /// the next round.  No-op for unordered groups.
    fn finish_turn(&self, p: PipelineId, round: u64) {
        if !self.ordered {
            return;
        }
        let mut next = self.next_round.lock();
        next.insert(p, round + 1);
        drop(next);
        self.emit_turn.notify_all();
    }

    /// Wake every replica parked on the emission or admission gate
    /// (program teardown).
    pub(crate) fn cancel_wake(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        {
            let _guard = self.next_round.lock();
            self.emit_turn.notify_all();
        }
        let _guard = self.admission.lock();
        self.admit.notify_all();
    }
}

/// One pipeline membership of a stage.
pub(crate) struct Port {
    pub(crate) pipeline: PipelineId,
    /// Input queue; `None` for virtual stages, which use the shared input.
    pub(crate) input: Option<Arc<Queue>>,
    pub(crate) output: Arc<Queue>,
    pub(crate) recycle: Arc<Queue>,
    pub(crate) rounds: Rounds,
    pub(crate) stop: Arc<StopFlag>,
    pub(crate) eos: bool,
    pub(crate) forwarded: bool,
    /// A caboose popped by `accept_many` in the same batch as preceding
    /// buffers.  Observing it immediately would mark end-of-stream before
    /// the stage conveys those buffers, so it is held here and observed on
    /// the next accept (or during `finish`).
    pub(crate) deferred_caboose: bool,
}

impl Port {
    /// Duplicate this port for another replica of the same stage (shared
    /// queues, fresh end-of-stream flags).
    pub(crate) fn clone_for_replica(&self) -> Port {
        Port {
            pipeline: self.pipeline,
            input: self.input.clone(),
            output: Arc::clone(&self.output),
            recycle: Arc::clone(&self.recycle),
            rounds: self.rounds,
            stop: Arc::clone(&self.stop),
            eos: false,
            forwarded: false,
            deferred_caboose: false,
        }
    }
}

#[derive(Default)]
pub(crate) struct CtxStats {
    pub(crate) blocked_accept: Duration,
    pub(crate) blocked_convey: Duration,
    /// Time spent parked at a farm's admission gate (replica index above
    /// the live width) — idle capacity, not busy and not starved.
    pub(crate) parked: Duration,
    pub(crate) buffers_in: u64,
    pub(crate) buffers_out: u64,
    pub(crate) spans: Vec<crate::stats::Span>,
}

/// Live per-stage counters, published incrementally (after every accept
/// and convey) so a mid-run sampler sees the stage's busy/starved profile
/// as it evolves, not only at thread exit.  Deltas are tracked against
/// already-published totals, so the final counter values equal the
/// end-of-run totals exactly.
pub(crate) struct LiveStageMetrics {
    busy: Arc<crate::metrics::Counter>,
    starved: Arc<crate::metrics::Counter>,
    backpressured: Arc<crate::metrics::Counter>,
    rounds: Arc<crate::metrics::Counter>,
    started: Instant,
    pub_busy: u64,
    pub_starved: u64,
    pub_backp: u64,
}

/// Cap on recorded spans per stage so tracing cannot grow unbounded.
const MAX_SPANS: usize = 100_000;

/// The handle through which a stage interacts with its pipelines.
pub struct StageCtx {
    name: String,
    ports: Vec<Port>,
    /// Present iff the stage is virtual: the single queue shared by all
    /// member pipelines (Figure 5(b)).
    shared_input: Option<Arc<Queue>>,
    /// Present iff the stage is replicated: shared caboose bookkeeping.
    replica_group: Option<Arc<ReplicaGroup>>,
    /// This replica's index within its group (0 for ordinary stages);
    /// compared against the group's live width at the admission gate.
    replica_index: usize,
    /// Incrementally-published stage counters; `None` (the default) when
    /// no metrics registry is attached.
    live: Option<LiveStageMetrics>,
    /// Program start time when tracing is enabled; blocked intervals are
    /// recorded relative to it.
    trace_epoch: Option<Instant>,
    /// Event hooks; `None` (the default) costs one never-taken branch per
    /// accept/convey.
    observer: Option<Arc<dyn crate::observe::Observer>>,
    /// Flight-recorder ring for causal spans; `None` (the default) costs
    /// one never-taken branch per transition, same as `observer`.
    ring: Option<Arc<crate::trace::SpanRing>>,
    /// End of this thread's last queue operation (ns since the trace-sink
    /// epoch); the gap to the next convey is attributed as a `Work` span.
    last_qop_end_ns: u64,
    /// Buffer-residency row in the program's
    /// [`MemoryLedger`](crate::profile::MemoryLedger); `None` (the
    /// default) costs one never-taken branch per accept/convey.
    ledger: Option<Arc<crate::profile::StageLedger>>,
    aux: Vec<u8>,
    /// Reusable scratch for [`StageCtx::accept_many`] batches.
    batch: Vec<Item>,
    registry: Arc<Registry>,
    pub(crate) stats: CtxStats,
}

impl StageCtx {
    pub(crate) fn new(
        name: String,
        ports: Vec<Port>,
        shared_input: Option<Arc<Queue>>,
        registry: Arc<Registry>,
    ) -> Self {
        StageCtx {
            name,
            ports,
            shared_input,
            replica_group: None,
            replica_index: 0,
            live: None,
            trace_epoch: None,
            observer: None,
            ring: None,
            last_qop_end_ns: 0,
            ledger: None,
            aux: Vec::new(),
            batch: Vec::new(),
            registry,
            stats: CtxStats::default(),
        }
    }

    pub(crate) fn set_replica_group(&mut self, group: Arc<ReplicaGroup>, index: usize) {
        self.replica_group = Some(group);
        self.replica_index = index;
    }

    /// Attach this stage's residency row in the program's memory ledger;
    /// accepted buffers charge it, conveyed/discarded buffers credit it.
    pub(crate) fn set_ledger(&mut self, ledger: Arc<crate::profile::StageLedger>) {
        self.ledger = Some(ledger);
    }

    /// Charge an accepted buffer's capacity to this stage's ledger row.
    fn ledger_acquire(&self, bytes: usize) {
        if let Some(l) = &self.ledger {
            l.acquire(bytes);
        }
    }

    /// Credit a conveyed/discarded buffer's capacity back.
    fn ledger_release(&self, bytes: usize) {
        if let Some(l) = &self.ledger {
            l.release(bytes);
        }
    }

    /// Attach incrementally-published stage counters (named under the
    /// `core/stage_*` prefixes with this stage's task name).
    pub(crate) fn set_live_metrics(
        &mut self,
        registry: &crate::metrics::MetricsRegistry,
        started: Instant,
    ) {
        use crate::analyze::{
            STAGE_BACKPRESSURED_PREFIX, STAGE_BUSY_PREFIX, STAGE_ROUNDS_PREFIX,
            STAGE_STARVED_PREFIX,
        };
        self.live = Some(LiveStageMetrics {
            busy: registry.counter(&format!("{STAGE_BUSY_PREFIX}{}", self.name)),
            starved: registry.counter(&format!("{STAGE_STARVED_PREFIX}{}", self.name)),
            backpressured: registry.counter(&format!("{STAGE_BACKPRESSURED_PREFIX}{}", self.name)),
            rounds: registry.counter(&format!("{STAGE_ROUNDS_PREFIX}{}", self.name)),
            started,
            pub_busy: 0,
            pub_starved: 0,
            pub_backp: 0,
        });
    }

    /// Publish the delta between current totals and what was already
    /// published.  Cheap (a few relaxed atomic adds); called after every
    /// accept and convey, and once more by the runtime at thread exit so
    /// the counters converge on the exact end-of-run totals.
    pub(crate) fn publish_live(&mut self) {
        let Some(l) = &mut self.live else {
            return;
        };
        let wall = l.started.elapsed().as_nanos() as u64;
        let acc = self.stats.blocked_accept.as_nanos() as u64;
        let conv = self.stats.blocked_convey.as_nanos() as u64;
        let parked = self.stats.parked.as_nanos() as u64;
        let busy = wall.saturating_sub(acc + conv + parked);
        if busy > l.pub_busy {
            l.busy.add(busy - l.pub_busy);
            l.pub_busy = busy;
        }
        if acc > l.pub_starved {
            l.starved.add(acc - l.pub_starved);
            l.pub_starved = acc;
        }
        if conv > l.pub_backp {
            l.backpressured.add(conv - l.pub_backp);
            l.pub_backp = conv;
        }
    }

    /// Count one completed round (a conveyed or discarded buffer) on the
    /// live throughput counter.
    fn record_round(&self) {
        if let Some(l) = &self.live {
            l.rounds.inc();
        }
    }

    /// Park at the farm's admission gate when this replica's index is
    /// above the live width.  Called before every input pop, so width
    /// changes land exactly at round boundaries; parked time is `parked`
    /// in the stats — neither busy nor starved.
    fn await_admission(&mut self) -> Result<()> {
        if let Some(group) = self.replica_group.clone() {
            if self.replica_index >= group.active() {
                let t0 = Instant::now();
                let res = group.await_admission(self.replica_index);
                self.stats.parked += t0.elapsed();
                self.publish_live();
                res?;
            }
        }
        Ok(())
    }

    pub(crate) fn set_trace_epoch(&mut self, epoch: Instant) {
        self.trace_epoch = Some(epoch);
    }

    pub(crate) fn set_observer(&mut self, observer: Arc<dyn crate::observe::Observer>) {
        self.observer = Some(observer);
    }

    pub(crate) fn set_ring(&mut self, ring: Arc<crate::trace::SpanRing>) {
        self.ring = Some(ring);
    }

    pub(crate) fn ring(&self) -> Option<&Arc<crate::trace::SpanRing>> {
        self.ring.as_ref()
    }

    fn record_span(&mut self, kind: crate::stats::SpanKind, t0: Instant, t1: Instant) {
        if let Some(epoch) = self.trace_epoch {
            if self.stats.spans.len() < MAX_SPANS {
                self.stats.spans.push(crate::stats::Span {
                    kind,
                    start_ns: t0.duration_since(epoch).as_nanos() as u64,
                    end_ns: t1.duration_since(epoch).as_nanos() as u64,
                });
            }
        }
    }

    /// Name of this stage.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pipelines this stage belongs to, in membership (lane) order.
    pub fn pipelines(&self) -> impl Iterator<Item = PipelineId> + '_ {
        self.ports.iter().map(|p| p.pipeline)
    }

    /// Number of pipelines this stage belongs to.
    pub fn lanes(&self) -> usize {
        self.ports.len()
    }

    /// Lane index (0-based membership order) of a pipeline.
    pub fn lane(&self, pipeline: PipelineId) -> Result<usize> {
        self.port_index(pipeline)
    }

    /// True once the program is being torn down because some stage failed.
    pub fn is_cancelled(&self) -> bool {
        self.registry.is_cancelled()
    }

    fn port_index(&self, pipeline: PipelineId) -> Result<usize> {
        self.ports
            .iter()
            .position(|p| p.pipeline == pipeline)
            .ok_or_else(|| {
                FgError::Usage(format!(
                    "stage `{}` does not belong to {pipeline}",
                    self.name
                ))
            })
    }

    /// Accept the next buffer; only valid for a stage that belongs to
    /// exactly one pipeline.  Returns `Ok(None)` once at end of stream.
    pub fn accept(&mut self) -> Result<Option<Buffer>> {
        if self.shared_input.is_some() {
            return Err(FgError::Usage(format!(
                "stage `{}` is virtual; use accept_any()",
                self.name
            )));
        }
        if self.ports.len() != 1 {
            return Err(FgError::Usage(format!(
                "stage `{}` belongs to {} pipelines; use accept_from()",
                self.name,
                self.ports.len()
            )));
        }
        self.pop_port(0)
    }

    /// Accept up to `max` buffers in one batch, amortizing queue-lock
    /// acquisitions; only valid for a stage that belongs to exactly one
    /// pipeline.  Appends the buffers to `out` and returns how many
    /// arrived; `Ok(0)` means end of stream.  Blocks until at least one
    /// buffer is available (or the stream ends), like [`StageCtx::accept`].
    pub fn accept_many(&mut self, max: usize, out: &mut Vec<Buffer>) -> Result<usize> {
        if self.shared_input.is_some() {
            return Err(FgError::Usage(format!(
                "stage `{}` is virtual; use accept_any()",
                self.name
            )));
        }
        if self.ports.len() != 1 {
            return Err(FgError::Usage(format!(
                "stage `{}` belongs to {} pipelines; use accept_from()",
                self.name,
                self.ports.len()
            )));
        }
        if max == 0 {
            return Err(FgError::Usage(format!(
                "stage `{}` called accept_many with a zero batch size",
                self.name
            )));
        }
        loop {
            self.take_deferred_caboose(0)?;
            if self.ports[0].eos {
                return Ok(0);
            }
            self.await_admission()?;
            let input = match &self.ports[0].input {
                Some(q) => Arc::clone(q),
                None => {
                    return Err(FgError::Usage(format!(
                        "stage `{}` has no direct input queue for {}",
                        self.name, self.ports[0].pipeline
                    )))
                }
            };
            let mut items = std::mem::take(&mut self.batch);
            debug_assert!(items.is_empty());
            if let Some(ring) = &self.ring {
                ring.set_state(crate::trace::ThreadState::BlockedAccept);
            }
            let t0 = Instant::now();
            let res = input.pop_many(max, &mut items);
            let t1 = Instant::now();
            self.stats.blocked_accept += t1 - t0;
            self.publish_live();
            self.record_span(crate::stats::SpanKind::Accept, t0, t1);
            if res.is_err() {
                self.batch = items;
                return Err(FgError::Cancelled);
            }
            if let Some(ring) = &self.ring {
                ring.set_state(crate::trace::ThreadState::Busy);
            }
            let mut got = 0;
            let mut caboose = None;
            for item in items.drain(..) {
                match item {
                    Item::Buf(b) => {
                        self.stats.buffers_in += 1;
                        self.ledger_acquire(b.capacity());
                        if let Some(obs) = &self.observer {
                            obs.on_accept(
                                &self.name,
                                b.pipeline(),
                                b.round(),
                                input.name(),
                                t1 - t0,
                            );
                        }
                        self.trace_accept(&b, t0, t1);
                        out.push(b);
                        got += 1;
                    }
                    // The queue ends a batch at a caboose, so it can only
                    // be the final item.
                    Item::Caboose(p) => caboose = Some(p),
                }
            }
            self.batch = items;
            if let Some(p) = caboose {
                debug_assert_eq!(p, self.ports[0].pipeline);
                if got > 0 {
                    // Buffers precede the caboose in this batch; hold the
                    // caboose so the stage can still convey them.
                    self.ports[0].deferred_caboose = true;
                } else {
                    if let Some(ring) = &self.ring {
                        ring.record(
                            crate::trace::TraceKind::Accept,
                            p.0,
                            0,
                            0,
                            ring.ns_of(t0),
                            ring.ns_of(t1),
                        );
                    }
                    self.observe_caboose(0, p)?;
                }
            }
            if got > 0 {
                return Ok(got);
            }
            // Caboose-only batch: the port is now at end of stream, so the
            // next loop iteration returns Ok(0).
        }
    }

    /// Accept the next buffer from a specific pipeline (common stage of
    /// intersecting pipelines).  Returns `Ok(None)` once that pipeline's
    /// stream has ended.
    pub fn accept_from(&mut self, pipeline: PipelineId) -> Result<Option<Buffer>> {
        if self.shared_input.is_some() {
            return Err(FgError::Usage(format!(
                "stage `{}` is virtual; use accept_any()",
                self.name
            )));
        }
        let idx = self.port_index(pipeline)?;
        self.pop_port(idx)
    }

    /// Accept the next buffer from whichever member pipeline has one ready
    /// (virtual stages only).  Returns `Ok(None)` once *all* member
    /// pipelines have ended.
    pub fn accept_any(&mut self) -> Result<Option<Buffer>> {
        let shared = match &self.shared_input {
            Some(q) => Arc::clone(q),
            None => {
                return Err(FgError::Usage(format!(
                    "stage `{}` is not virtual; use accept()/accept_from()",
                    self.name
                )))
            }
        };
        loop {
            if self.ports.iter().all(|p| p.eos) {
                return Ok(None);
            }
            if let Some(ring) = &self.ring {
                ring.set_state(crate::trace::ThreadState::BlockedAccept);
            }
            let t0 = Instant::now();
            let popped = shared.pop();
            let t1 = Instant::now();
            self.stats.blocked_accept += t1 - t0;
            self.publish_live();
            self.record_span(crate::stats::SpanKind::Accept, t0, t1);
            match popped {
                Ok(Item::Buf(b)) => {
                    self.stats.buffers_in += 1;
                    self.ledger_acquire(b.capacity());
                    if let Some(obs) = &self.observer {
                        obs.on_accept(&self.name, b.pipeline(), b.round(), shared.name(), t1 - t0);
                    }
                    self.trace_accept(&b, t0, t1);
                    return Ok(Some(b));
                }
                Ok(Item::Caboose(p)) => {
                    if let Some(ring) = &self.ring {
                        ring.set_state(crate::trace::ThreadState::Busy);
                        ring.record(
                            crate::trace::TraceKind::Accept,
                            p.0,
                            0,
                            0,
                            ring.ns_of(t0),
                            ring.ns_of(t1),
                        );
                    }
                    self.mark_eos_and_forward(p)?;
                    // Keep waiting: other member pipelines may still flow.
                }
                Err(_) => return Err(FgError::Cancelled),
            }
        }
    }

    /// Accept using whatever mode fits this stage: `accept_any` when
    /// virtual, `accept` when it has a single pipeline.  Used by
    /// [`map_stage`] so the same closure works in both settings.
    pub fn accept_auto(&mut self) -> Result<Option<Buffer>> {
        if self.shared_input.is_some() {
            self.accept_any()
        } else {
            self.accept()
        }
    }

    /// Observe a caboose held back by a mixed `accept_many` batch, now
    /// that the stage has had the chance to convey the batch's buffers.
    fn take_deferred_caboose(&mut self, idx: usize) -> Result<()> {
        if self.ports[idx].deferred_caboose {
            self.ports[idx].deferred_caboose = false;
            let p = self.ports[idx].pipeline;
            self.observe_caboose(idx, p)?;
        }
        Ok(())
    }

    fn pop_port(&mut self, idx: usize) -> Result<Option<Buffer>> {
        self.take_deferred_caboose(idx)?;
        if self.ports[idx].eos {
            return Ok(None);
        }
        self.await_admission()?;
        let input = match &self.ports[idx].input {
            Some(q) => Arc::clone(q),
            None => {
                return Err(FgError::Usage(format!(
                    "stage `{}` has no direct input queue for {}",
                    self.name, self.ports[idx].pipeline
                )))
            }
        };
        if let Some(ring) = &self.ring {
            ring.set_state(crate::trace::ThreadState::BlockedAccept);
        }
        let t0 = Instant::now();
        let popped = input.pop();
        let t1 = Instant::now();
        self.stats.blocked_accept += t1 - t0;
        self.publish_live();
        self.record_span(crate::stats::SpanKind::Accept, t0, t1);
        match popped {
            Ok(Item::Buf(b)) => {
                self.stats.buffers_in += 1;
                self.ledger_acquire(b.capacity());
                if let Some(obs) = &self.observer {
                    obs.on_accept(&self.name, b.pipeline(), b.round(), input.name(), t1 - t0);
                }
                self.trace_accept(&b, t0, t1);
                Ok(Some(b))
            }
            Ok(Item::Caboose(p)) => {
                debug_assert_eq!(p, self.ports[idx].pipeline);
                if let Some(ring) = &self.ring {
                    // A caboose is still progress for the watchdog's clock.
                    ring.set_state(crate::trace::ThreadState::Busy);
                    ring.record(
                        crate::trace::TraceKind::Accept,
                        p.0,
                        0,
                        0,
                        ring.ns_of(t0),
                        ring.ns_of(t1),
                    );
                }
                self.observe_caboose(idx, p)?;
                Ok(None)
            }
            Err(_) => Err(FgError::Cancelled),
        }
    }

    /// Flight-record an accepted buffer and flip this thread back to busy.
    fn trace_accept(&mut self, b: &Buffer, t0: Instant, t1: Instant) {
        let end = match &self.ring {
            Some(ring) => {
                ring.set_state(crate::trace::ThreadState::Busy);
                let end = ring.ns_of(t1);
                ring.record(
                    crate::trace::TraceKind::Accept,
                    b.pipeline().0,
                    b.round(),
                    b.trace_id(),
                    ring.ns_of(t0),
                    end,
                );
                end
            }
            None => return,
        };
        self.last_qop_end_ns = end;
    }

    /// Handle a caboose popped from port `idx`: in a replica group, only
    /// the last replica to see it forwards it downstream — the others mark
    /// their own end of stream and hand the caboose to a sibling.
    fn observe_caboose(&mut self, idx: usize, p: PipelineId) -> Result<()> {
        if let Some(group) = self.replica_group.clone() {
            if !group.observe_caboose(p) {
                self.ports[idx].eos = true;
                self.ports[idx].forwarded = true;
                if let Some(input) = self.ports[idx].input.clone() {
                    let _ = input.push(Item::Caboose(p));
                }
                return Ok(());
            }
        }
        self.mark_eos_and_forward(p)
    }

    /// Convey a buffer to its pipeline's next stage.  The routing is
    /// determined by the buffer's pipeline tag; buffers cannot jump
    /// pipelines.
    pub fn convey(&mut self, buf: Buffer) -> Result<()> {
        let idx = self.port_index(buf.pipeline())?;
        if self.ports[idx].eos {
            return Err(FgError::Usage(format!(
                "stage `{}` conveyed a buffer on {} after observing its end \
                 of stream; convey or discard held buffers before accepting \
                 past the caboose",
                self.name,
                buf.pipeline()
            )));
        }
        let pipeline = buf.pipeline();
        let round = buf.round();
        let tid = buf.trace_id();
        // Credit the ledger up front: the buffer leaves this stage whether
        // the push lands or the program is cancelled underneath it.
        self.ledger_release(buf.capacity());
        let ordered = self.replica_group.as_ref().is_some_and(|g| g.is_ordered());
        let t0 = Instant::now();
        // The gap since this thread's last queue operation is the stage's
        // own computation on this buffer: record it as a `Work` span.
        if let Some(ring) = &self.ring {
            let now = ring.ns_of(t0);
            if self.last_qop_end_ns > 0 && now > self.last_qop_end_ns {
                ring.record(
                    crate::trace::TraceKind::Work,
                    pipeline.0,
                    round,
                    tid,
                    self.last_qop_end_ns,
                    now,
                );
            }
            if ordered {
                ring.set_state(crate::trace::ThreadState::TurnWait);
            }
        }
        // In an ordered farm, wait until every earlier round has been
        // emitted so downstream stages see rounds in order.  The wait
        // counts as blocked-convey time: the replica is done computing and
        // is stalled on downstream ordering.
        if let Some(group) = self.replica_group.clone() {
            if group.is_ordered() {
                group.await_turn(&self.name, pipeline, round)?;
            }
        }
        let t_push = if self.ring.is_some() && ordered {
            Instant::now()
        } else {
            t0
        };
        if let Some(ring) = &self.ring {
            if ordered {
                ring.record(
                    crate::trace::TraceKind::TurnWait,
                    pipeline.0,
                    round,
                    tid,
                    ring.ns_of(t0),
                    ring.ns_of(t_push),
                );
            }
            ring.set_state(crate::trace::ThreadState::BlockedConvey);
        }
        let res = self.ports[idx].output.push(Item::Buf(buf));
        if res.is_ok() {
            if let Some(group) = &self.replica_group {
                group.finish_turn(pipeline, round);
            }
        }
        let t1 = Instant::now();
        self.stats.blocked_convey += t1 - t0;
        self.publish_live();
        self.record_span(crate::stats::SpanKind::Convey, t0, t1);
        if res.is_ok() {
            self.trace_convey(pipeline, round, tid, t_push, t1);
        }
        match res {
            Ok(()) => {
                self.stats.buffers_out += 1;
                self.record_round();
                if let Some(obs) = &self.observer {
                    obs.on_convey(
                        &self.name,
                        pipeline,
                        round,
                        self.ports[idx].output.name(),
                        t1 - t0,
                    );
                }
                Ok(())
            }
            Err(_) => Err(FgError::Cancelled),
        }
    }

    /// Flight-record a completed convey and flip this thread back to busy.
    fn trace_convey(
        &mut self,
        pipeline: PipelineId,
        round: u64,
        tid: u64,
        t0: Instant,
        t1: Instant,
    ) {
        let end = match &self.ring {
            Some(ring) => {
                let end = ring.ns_of(t1);
                ring.record(
                    crate::trace::TraceKind::Convey,
                    pipeline.0,
                    round,
                    tid,
                    ring.ns_of(t0),
                    end,
                );
                ring.set_state(crate::trace::ThreadState::Busy);
                end
            }
            None => return,
        };
        self.last_qop_end_ns = end;
    }

    /// Return a buffer straight to its pipeline's buffer pool without
    /// passing it downstream (e.g. a spent input buffer the stage consumed
    /// wholesale).  Equivalent to conveying it to the pipeline's sink when
    /// this stage is the last stage of that pipeline.
    pub fn discard(&mut self, buf: Buffer) -> Result<()> {
        let idx = self.port_index(buf.pipeline())?;
        // An ordered farm must still take (and release) the round's
        // emission turn: a discarded round produces nothing downstream,
        // but later rounds may only emit after it.
        let (pipeline, round, tid) = (buf.pipeline(), buf.round(), buf.trace_id());
        self.ledger_release(buf.capacity());
        if let Some(group) = self.replica_group.clone() {
            if group.is_ordered() {
                group.await_turn(&self.name, pipeline, round)?;
            }
        }
        let t0 = Instant::now();
        // Ignore a closed recycle queue: the pipeline is stopping and the
        // buffer's memory is simply released.
        let _ = self.ports[idx].recycle.push(Item::Buf(buf));
        if let Some(group) = &self.replica_group {
            group.finish_turn(pipeline, round);
        }
        self.record_round();
        if let Some(ring) = &self.ring {
            ring.record(
                crate::trace::TraceKind::Recycle,
                pipeline.0,
                round,
                tid,
                ring.ns_of(t0),
                ring.now_ns(),
            );
        }
        Ok(())
    }

    /// Stop an [`Rounds::UntilStopped`] pipeline: its source emits the
    /// caboose and retires.  Idempotent.
    pub fn stop(&mut self, pipeline: PipelineId) -> Result<()> {
        let idx = self.port_index(pipeline)?;
        self.ports[idx].stop.stop();
        Ok(())
    }

    /// A scratch buffer of at least `len` bytes, reused across calls (FG's
    /// auxiliary buffer, used e.g. for out-of-place permutations).
    pub fn aux(&mut self, len: usize) -> &mut [u8] {
        if self.aux.len() < len {
            self.aux.resize(len, 0);
        }
        &mut self.aux[..len]
    }

    fn mark_eos_and_forward(&mut self, pipeline: PipelineId) -> Result<()> {
        let idx = self.port_index(pipeline)?;
        self.ports[idx].eos = true;
        if !self.ports[idx].forwarded {
            self.ports[idx].forwarded = true;
            if self.ports[idx]
                .output
                .push(Item::Caboose(pipeline))
                .is_err()
                && !self.registry.is_cancelled()
            {
                return Err(FgError::Cancelled);
            }
        }
        Ok(())
    }

    /// Post-run cleanup executed by the runtime: stop `UntilStopped`
    /// pipelines, drain unconsumed inputs (recycling their buffers), and
    /// guarantee exactly one caboose went downstream per pipeline.
    pub(crate) fn finish(&mut self) {
        for idx in 0..self.ports.len() {
            if matches!(self.ports[idx].rounds, Rounds::UntilStopped) {
                self.ports[idx].stop.stop();
            }
        }
        // Drain the shared input (virtual stage) until every lane ends.
        if let Some(shared) = self.shared_input.clone() {
            while self.ports.iter().any(|p| !p.eos) {
                match shared.pop() {
                    Ok(Item::Buf(b)) => {
                        let _ = self.discard(b);
                    }
                    Ok(Item::Caboose(p)) => {
                        let _ = self.mark_eos_and_forward(p);
                    }
                    Err(_) => break,
                }
            }
        }
        // Drain per-pipeline inputs.
        for idx in 0..self.ports.len() {
            let _ = self.take_deferred_caboose(idx);
            while !self.ports[idx].eos {
                let input = match &self.ports[idx].input {
                    Some(q) => Arc::clone(q),
                    None => break,
                };
                match input.pop() {
                    Ok(Item::Buf(b)) => {
                        let _ = self.ports[idx].recycle.push(Item::Buf(b));
                    }
                    Ok(Item::Caboose(p)) => {
                        let _ = self.observe_caboose(idx, p);
                    }
                    Err(_) => break,
                }
            }
        }
        // Last resort (queues closed mid-drain): make sure a caboose was at
        // least attempted downstream for every pipeline.
        for idx in 0..self.ports.len() {
            if !self.ports[idx].forwarded {
                self.ports[idx].forwarded = true;
                let _ = self.ports[idx]
                    .output
                    .try_push(Item::Caboose(self.ports[idx].pipeline));
            }
        }
    }
}
