//! # FG: a pipeline-structured programming environment
//!
//! A Rust reproduction of the **FG** ("ABCDEFG" — *Asynchronous Buffered
//! Computation Design and Engineering Framework Generator*) programming
//! environment from Dartmouth (Davidson & Cormen, SPAA 2006; Natarajan,
//! Cormen & Strange's companion paper on out-of-core distribution sort).
//!
//! FG mitigates the latency of disk I/O and interprocessor communication in
//! out-of-core programs by composing programmer-written *synchronous* stage
//! functions into *asynchronous* coarse-grained software pipelines:
//!
//! * each stage runs in its own thread, with bounded buffer queues between
//!   consecutive stages;
//! * an implicit **source** injects buffers (one per *round*) and an
//!   implicit **sink** recycles them, so a fixed pool of buffers services an
//!   arbitrarily long computation;
//! * **disjoint pipelines** on a node support unbalanced communication
//!   (send and receive pipelines progress at independent rates);
//! * **intersecting pipelines** share a *common stage* (e.g. a k-way merge)
//!   that accepts from an explicitly named predecessor pipeline;
//! * **virtual stages** let k identical stages in separate pipelines share a
//!   single thread and input queue — and their pipelines' sources and sinks
//!   collapse too — so hundreds of pipelines don't need hundreds of threads.
//!
//! ## Quick start
//!
//! ```
//! use fg_core::{map_stage, PipelineCfg, Program, Rounds};
//!
//! let mut prog = Program::new("demo");
//! let fill = prog.add_stage(
//!     "fill",
//!     map_stage(|buf, _ctx| {
//!         let round = buf.round();
//!         buf.space_mut()[0] = round as u8;
//!         buf.set_filled(1);
//!         Ok(())
//!     }),
//! );
//! let check = prog.add_stage(
//!     "check",
//!     map_stage(|buf, _ctx| {
//!         assert_eq!(buf.filled()[0] as u64, buf.round());
//!         Ok(())
//!     }),
//! );
//! let cfg = PipelineCfg::new("p", 2, 16).rounds(Rounds::Count(10));
//! prog.add_pipeline(cfg, &[fill, check]).unwrap();
//! let report = prog.run().unwrap();
//! assert_eq!(report.stage("fill").unwrap().buffers_out, 10);
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the tracking allocator ([`alloc`]) implements
// `GlobalAlloc`, an inherently `unsafe` trait, behind a module-scoped
// allow.  Everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]

pub mod affinity;
pub mod alloc;
pub mod analyze;
mod buffer;
pub mod cluster_report;
pub mod controller;
pub mod critical_path;
pub mod degrade;
mod error;
mod json;
pub mod metrics;
mod observe;
pub mod profile;
mod program;
#[doc(hidden)]
pub mod qbench;
mod queue;
mod runtime;
mod stage;
mod stats;
pub mod telemetry;
pub mod trace;

pub use affinity::PinMode;
pub use alloc::{
    assert_steady_state_alloc_free, register_tag, set_thread_tag, thread_tag_scope, with_tag,
    FgAlloc, TagCounts, TagId,
};
pub use analyze::{
    diagnose, diagnose_cluster, diagnose_window, diagnose_with_trace, ClusterDiagnosis,
    ContentionFinding, Diagnosis, QueueFinding, RankVerdict, ResourceFinding, ResourceFindingKind,
    StageDiagnosis, StageVerdict, WindowDiagnosis,
};
pub use buffer::{Buffer, PipelineId, StageId};
pub use cluster_report::{ClusterReport, CollectiveStat, RankReport};
pub use controller::{
    ControlStatus, Controller, ControllerCfg, ControllerLog, Decision, DepthActuator, PoolControl,
};
pub use critical_path::{critical_path, CriticalPath, PathSegment, RoundPath};
pub use error::{FgError, Result};
pub use json::Json;
pub use metrics::{
    Counter, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use observe::{CountingObserver, MetricsObserver, Observer};
pub use profile::{
    register_current_thread, AllocResources, LedgerSnapshot, MemoryLedger, ProfilerCfg,
    ResourceProfiler, ResourceReport, StageLedger, StageResidency, ThreadResources,
};
pub use program::{run_linear, PipelineCfg, Program};
pub use stage::{map_stage, reorder_stage, MapStage, Rounds, Stage, StageCtx};
pub use stats::{PipelineShape, QueueDepth, Report, Span, SpanKind, StageStats};
pub use telemetry::{Sampler, SamplerCfg, TelemetryServer, TimestampedSnapshot};
pub use trace::{
    Postmortem, SpanRec, SpanRing, ThreadLog, ThreadState, TraceCtx, TraceKind, TraceSink,
    WatchdogAction, WatchdogCfg,
};
