//! Benchmark-only access to the internal bounded queue.
//!
//! [`Queue`](crate::queue) is deliberately crate-private: programs interact
//! with queues only through [`StageCtx`](crate::StageCtx).  The
//! `queue_throughput` benchmark in `crates/bench`, however, needs to drive
//! the MPMC and SPSC flavors directly to measure the fast path in
//! isolation.  This module exposes the minimum surface for that; it is
//! hidden from docs and carries no stability promise.

use std::sync::Arc;

use crate::buffer::{Buffer, PipelineId};
use crate::queue::{Item, Queue};

/// A handle on one internal queue, cloneable across producer/consumer
/// threads.
#[derive(Clone)]
pub struct BenchQueue {
    q: Arc<Queue>,
}

/// Reusable scratch for [`BenchQueue::pop_many`], so the benchmark's batched
/// consumer allocates once, like `StageCtx::accept_many` does.
#[derive(Default)]
pub struct Batch(Vec<Item>);

impl Batch {
    /// Number of items received by the last `pop_many`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the last `pop_many` returned nothing.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Drain the batch, handing each buffer to `f`.
    pub fn drain_buffers(&mut self, mut f: impl FnMut(Buffer)) {
        for item in self.0.drain(..) {
            if let Item::Buf(b) = item {
                f(b);
            }
        }
    }
}

impl BenchQueue {
    /// A queue using the general mutex-guarded MPMC flavor.
    pub fn mpmc(capacity: usize) -> Self {
        BenchQueue {
            q: Queue::new("bench/mpmc", capacity),
        }
    }

    /// A queue using the lock-free MPMC ring flavor (the planner's default
    /// for farm inputs and recycle/sink queues).
    pub fn mpmc_lock_free(capacity: usize) -> Self {
        BenchQueue {
            q: Queue::lock_free("bench/lockfree", capacity),
        }
    }

    /// A queue using the single-producer single-consumer ring flavor.  The
    /// caller promises at most one pushing and one popping thread.
    pub fn spsc(capacity: usize) -> Self {
        BenchQueue {
            q: Queue::spsc_with_gauge("bench/spsc", capacity, None),
        }
    }

    /// Allocate a buffer to circulate through the queue.
    pub fn buffer(bytes: usize) -> Buffer {
        Buffer::new(bytes, PipelineId(0))
    }

    /// Blocking push; false once the queue is closed.
    pub fn push(&self, buf: Buffer) -> bool {
        self.q.push(Item::Buf(buf)).is_ok()
    }

    /// Blocking pop; `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<Buffer> {
        match self.q.pop() {
            Ok(Item::Buf(b)) => Some(b),
            _ => None,
        }
    }

    /// Blocking batched pop of up to `max` items into `batch`; false once
    /// the queue is closed and drained.
    pub fn pop_many(&self, max: usize, batch: &mut Batch) -> bool {
        batch.0.clear();
        self.q.pop_many(max, &mut batch.0).is_ok()
    }

    /// Non-blocking push; false when the queue is full or closed (the
    /// buffer is dropped then — bench/property harnesses track counts, not
    /// identities, on the failure path).
    pub fn try_push(&self, buf: Buffer) -> bool {
        self.q.try_push(Item::Buf(buf)).is_ok()
    }

    /// Implementation label: `"mutex"`, `"lockfree"`, or `"spsc"`.
    pub fn flavor(&self) -> &'static str {
        self.q.flavor_label()
    }

    /// Failed position CASes so far (lock-free flavor; zero elsewhere).
    pub fn cas_retries(&self) -> u64 {
        self.q.cas_retries()
    }

    /// Close the queue, waking blocked producers and consumers.
    pub fn close(&self) {
        self.q.close();
    }
}
