//! Cluster-wide telemetry aggregation: merging per-rank reports and
//! registries into one [`ClusterReport`].
//!
//! In the real-distributed shape (ROADMAP item 1) every node owns its own
//! [`MetricsRegistry`] and ships a [`RankReport`] home at the end of a run
//! (or over the telemetry server mid-run); the coordinator folds them with
//! [`ClusterReport::merge`].  The simulated cluster produces the same
//! structure from [`Cluster::run_observed`]'s per-rank snapshots, so the
//! aggregation path is identical when the fabric goes over TCP.
//!
//! The merge is a per-rank union: a rank that appears in both sides is
//! replaced by the right-hand side.  That makes merge **associative** and,
//! for the normal case of disjoint rank sets, **permutation-invariant** —
//! the coordinator may fold nodes' reports in any arrival order.

use std::time::Duration;

use crate::json::{obj, Json};
use crate::metrics::MetricsSnapshot;
use crate::stats::Report;

/// One rank's contribution to a [`ClusterReport`]: the FG program reports
/// it ran (e.g. both passes of dsort), its wall-clock time on the node
/// function, and its registry snapshot (stage metrics plus the rank's
/// `comm/*` names).
#[derive(Debug, Clone, PartialEq)]
pub struct RankReport {
    /// The rank this report describes.
    pub rank: usize,
    /// Wall-clock time of the rank's node function.
    pub wall: Duration,
    /// Reports of the FG programs this rank ran, in execution order.
    pub reports: Vec<Report>,
    /// Snapshot of the rank's metrics registry.
    pub metrics: MetricsSnapshot,
}

impl RankReport {
    /// Total busy time across every stage of every program this rank ran.
    pub fn busy(&self) -> Duration {
        self.reports.iter().map(|r| r.total_busy()).sum()
    }

    /// Sum of a histogram's `sum` field (total ns) under `name`.
    fn hist_sum_ns(&self, name: &str) -> u64 {
        self.metrics.histogram(name).map_or(0, |h| h.sum)
    }

    /// Total time this rank spent in user point-to-point sends (includes
    /// the simulated network charge).
    pub fn send_ns(&self) -> u64 {
        self.hist_sum_ns(&format!("comm/send_ns/r{}", self.rank))
    }

    /// Total time this rank spent blocked in user point-to-point receives.
    pub fn recv_wait_ns(&self) -> u64 {
        self.hist_sum_ns(&format!("comm/recv_wait_ns/r{}", self.rank))
    }

    /// Total time this rank spent inside collectives.
    pub fn collective_ns(&self) -> u64 {
        COLLECTIVE_OPS
            .iter()
            .map(|op| self.hist_sum_ns(&format!("comm/{op}_ns/r{}", self.rank)))
            .sum()
    }

    /// JSON object for this rank report.
    pub fn to_json_value(&self) -> Json {
        obj(vec![
            ("rank", Json::from(self.rank)),
            ("wall_ns", Json::from(self.wall.as_nanos() as u64)),
            (
                "reports",
                Json::Arr(self.reports.iter().map(Report::to_json_value).collect()),
            ),
            ("metrics", self.metrics.to_json_value()),
        ])
    }

    /// Parse a rank report written by [`RankReport::to_json_value`].
    pub fn from_json_value(j: &Json) -> Result<RankReport, String> {
        let reports = j
            .get("reports")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|r| Report::from_json(&r.to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RankReport {
            rank: j
                .get("rank")
                .and_then(Json::as_u64)
                .ok_or("rank report needs a rank")? as usize,
            wall: Duration::from_nanos(
                j.get("wall_ns")
                    .and_then(Json::as_u64)
                    .ok_or("rank report needs wall_ns")?,
            ),
            reports,
            metrics: match j.get("metrics") {
                Some(m) => MetricsSnapshot::from_json_value(m)?,
                None => MetricsSnapshot::default(),
            },
        })
    }
}

/// The collective operations carrying per-rank latency histograms.
pub const COLLECTIVE_OPS: [&str; 4] = ["barrier", "broadcast", "allgather", "alltoallv"];

/// One collective's latency rollup on one rank (from the per-rank
/// `comm/{op}_ns/r{rank}` histograms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveStat {
    /// Rank that recorded the samples.
    pub rank: usize,
    /// Calls this rank made.
    pub count: u64,
    /// Total ns this rank spent in the operation.
    pub total_ns: u64,
    /// Slowest single call, ns.
    pub max_ns: u64,
}

/// Aggregated observability of one cluster run: every rank's report,
/// mergeable, JSON round-trippable, and renderable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterReport {
    /// Cluster size (ranks may be missing while reports are in flight).
    pub nodes: usize,
    /// Per-rank reports, sorted by rank.
    pub ranks: Vec<RankReport>,
}

impl ClusterReport {
    /// An empty report for a cluster of `nodes`.
    pub fn new(nodes: usize) -> ClusterReport {
        ClusterReport {
            nodes,
            ranks: Vec::new(),
        }
    }

    /// Insert (or replace) one rank's report, keeping rank order.
    pub fn push(&mut self, rank: RankReport) {
        self.nodes = self.nodes.max(rank.rank + 1);
        match self.ranks.binary_search_by_key(&rank.rank, |r| r.rank) {
            Ok(i) => self.ranks[i] = rank,
            Err(i) => self.ranks.insert(i, rank),
        }
    }

    /// The report for `rank`, if present.
    pub fn rank(&self, rank: usize) -> Option<&RankReport> {
        self.ranks.iter().find(|r| r.rank == rank)
    }

    /// Fold `other` into `self`: per-rank union, with `other`'s entry
    /// replacing on a duplicate rank.  Associative, and commutative for
    /// disjoint rank sets — the order nodes' reports arrive in does not
    /// matter.
    pub fn merge(&mut self, other: &ClusterReport) {
        self.nodes = self.nodes.max(other.nodes);
        for r in &other.ranks {
            self.push(r.clone());
        }
    }

    /// Per-peer traffic matrix in bytes: `matrix[src][dst]` is what `src`
    /// sent to `dst`, parsed from the `comm/bytes/{src}->{dst}` counters of
    /// every rank's snapshot.
    pub fn traffic_matrix(&self) -> Vec<Vec<u64>> {
        let mut matrix = vec![vec![0u64; self.nodes]; self.nodes];
        for rank in &self.ranks {
            for (name, v) in &rank.metrics.counters {
                if let Some((src, dst)) = parse_peer_counter(name, "comm/bytes/") {
                    if src < self.nodes && dst < self.nodes {
                        // Replace (not add): the same counter may appear in
                        // several snapshots after a lossy shared-registry
                        // export; per-rank registries make this a no-op.
                        matrix[src][dst] = matrix[src][dst].max(*v);
                    }
                }
            }
        }
        matrix
    }

    /// Bytes each rank received, from the traffic matrix (column sums).
    pub fn bytes_received(&self) -> Vec<u64> {
        let m = self.traffic_matrix();
        (0..self.nodes)
            .map(|dst| m.iter().map(|row| row[dst]).sum())
            .collect()
    }

    /// Bytes each rank sent (row sums of the traffic matrix).
    pub fn bytes_sent(&self) -> Vec<u64> {
        self.traffic_matrix()
            .iter()
            .map(|row| row.iter().sum())
            .collect()
    }

    /// Latency rollup of collective `op` ("barrier", "broadcast",
    /// "allgather", "alltoallv") across ranks, one entry per rank that
    /// recorded samples.
    pub fn collective(&self, op: &str) -> Vec<CollectiveStat> {
        self.ranks
            .iter()
            .filter_map(|r| {
                let h = r.metrics.histogram(&format!("comm/{op}_ns/r{}", r.rank))?;
                (h.count > 0).then_some(CollectiveStat {
                    rank: r.rank,
                    count: h.count,
                    total_ns: h.sum,
                    max_ns: h.max,
                })
            })
            .collect()
    }

    /// Serialize as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The report as a [`Json`] value.
    pub fn to_json_value(&self) -> Json {
        obj(vec![
            ("nodes", Json::from(self.nodes)),
            (
                "ranks",
                Json::Arr(self.ranks.iter().map(RankReport::to_json_value).collect()),
            ),
        ])
    }

    /// Parse a report written by [`ClusterReport::to_json`].
    pub fn from_json(text: &str) -> Result<ClusterReport, String> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Parse a report embedded in a larger document.
    pub fn from_json_value(j: &Json) -> Result<ClusterReport, String> {
        let mut out = ClusterReport::new(
            j.get("nodes")
                .and_then(Json::as_u64)
                .ok_or("cluster report needs nodes")? as usize,
        );
        for r in j.get("ranks").and_then(Json::as_arr).unwrap_or(&[]) {
            out.push(RankReport::from_json_value(r)?);
        }
        Ok(out)
    }

    /// Human-readable cluster rollup: per-rank summary table, per-peer
    /// traffic heatmap, and collective latency breakdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== cluster report ({} nodes) ===\n", self.nodes));
        out.push_str(&format!(
            "{:<6} {:>10} {:>10} {:>6} {:>12} {:>12} {:>12}\n",
            "rank", "wall", "busy", "util", "send", "recv-wait", "collectives"
        ));
        for r in &self.ranks {
            let util = if r.wall.as_nanos() > 0 {
                r.busy().as_nanos() as f64 / r.wall.as_nanos() as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<6} {:>10} {:>10} {:>5.0}% {:>12} {:>12} {:>12}\n",
                format!("r{}", r.rank),
                fmt_dur_ns(r.wall.as_nanos() as u64),
                fmt_dur_ns(r.busy().as_nanos() as u64),
                util * 100.0,
                fmt_dur_ns(r.send_ns()),
                fmt_dur_ns(r.recv_wait_ns()),
                fmt_dur_ns(r.collective_ns()),
            ));
        }
        out.push_str(&render_traffic_matrix(&self.traffic_matrix()));
        let mut any = false;
        for op in COLLECTIVE_OPS {
            let stats = self.collective(op);
            if stats.is_empty() {
                continue;
            }
            if !any {
                out.push_str("collectives:\n");
                out.push_str(&format!(
                    "  {:<10} {:<6} {:>7} {:>12} {:>12} {:>12}\n",
                    "op", "rank", "calls", "total", "mean", "max"
                ));
                any = true;
            }
            for s in stats {
                out.push_str(&format!(
                    "  {:<10} {:<6} {:>7} {:>12} {:>12} {:>12}\n",
                    op,
                    format!("r{}", s.rank),
                    s.count,
                    fmt_dur_ns(s.total_ns),
                    fmt_dur_ns(s.total_ns / s.count.max(1)),
                    fmt_dur_ns(s.max_ns),
                ));
            }
        }
        out
    }
}

/// Parse `prefix{src}->{dst}` metric names.
pub(crate) fn parse_peer_counter(name: &str, prefix: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix(prefix)?;
    let (src, dst) = rest.split_once("->")?;
    Some((src.parse().ok()?, dst.parse().ok()?))
}

/// Render a bytes matrix as a table with a shade per cell (` ░▒▓█` scaled
/// to the largest cell), rows = sender, columns = receiver.
pub(crate) fn render_traffic_matrix(matrix: &[Vec<u64>]) -> String {
    let nodes = matrix.len();
    if nodes == 0 || matrix.iter().all(|row| row.iter().all(|&b| b == 0)) {
        return String::new();
    }
    let max = matrix
        .iter()
        .flat_map(|row| row.iter().copied())
        .max()
        .unwrap_or(0)
        .max(1);
    let mut out = String::from("traffic matrix (bytes, row sends to column):\n");
    out.push_str("  sent\\recv");
    for dst in 0..nodes {
        out.push_str(&format!(" {:>10}", format!("r{dst}")));
    }
    out.push('\n');
    for (src, row) in matrix.iter().enumerate() {
        out.push_str(&format!("  {:<9}", format!("r{src}")));
        for &bytes in row {
            let shade = match (bytes * 4).div_ceil(max) {
                0 => ' ',
                1 => '░',
                2 => '▒',
                3 => '▓',
                _ => '█',
            };
            out.push_str(&format!(" {:>9}{shade}", fmt_bytes(bytes)));
        }
        out.push('\n');
        let sent: u64 = row.iter().sum();
        let _ = sent;
    }
    out.push_str("  recv total");
    for dst in 0..nodes {
        let total: u64 = matrix.iter().map(|row| row[dst]).sum();
        out.push_str(&format!(" {:>10}", fmt_bytes(total)));
    }
    out.push('\n');
    out
}

/// `123456` → `"120.6K"`, etc.
pub(crate) fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 4] = ["B", "K", "M", "G"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b}B")
    } else {
        format!("{v:.1}{}", UNITS[unit])
    }
}

/// Nanoseconds as a compact human duration.
pub(crate) fn fmt_dur_ns(ns: u64) -> String {
    if ns == 0 {
        "0".into()
    } else if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn rank_report(rank: usize, wall_ms: u64) -> RankReport {
        let reg = MetricsRegistry::new();
        reg.counter(&format!("comm/bytes/{rank}->{}", (rank + 1) % 4))
            .add(1000 + rank as u64);
        reg.histogram(&format!("comm/barrier_ns/r{rank}"))
            .record(500);
        RankReport {
            rank,
            wall: Duration::from_millis(wall_ms),
            reports: Vec::new(),
            metrics: reg.snapshot(),
        }
    }

    #[test]
    fn push_replaces_and_sorts() {
        let mut cr = ClusterReport::new(4);
        cr.push(rank_report(2, 10));
        cr.push(rank_report(0, 10));
        cr.push(rank_report(2, 99));
        let ranks: Vec<usize> = cr.ranks.iter().map(|r| r.rank).collect();
        assert_eq!(ranks, vec![0, 2]);
        assert_eq!(cr.rank(2).unwrap().wall, Duration::from_millis(99));
    }

    #[test]
    fn traffic_matrix_reads_peer_counters() {
        let mut cr = ClusterReport::new(4);
        for rank in 0..4 {
            cr.push(rank_report(rank, 10));
        }
        let m = cr.traffic_matrix();
        assert_eq!(m[0][1], 1000);
        assert_eq!(m[3][0], 1003);
        assert_eq!(cr.bytes_received()[0], 1003);
        assert_eq!(cr.bytes_sent()[3], 1003);
    }

    #[test]
    fn collective_rollup_is_per_rank() {
        let mut cr = ClusterReport::new(2);
        cr.push(rank_report(0, 10));
        cr.push(rank_report(1, 10));
        let b = cr.collective("barrier");
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|s| s.count == 1));
        assert!(cr.collective("alltoallv").is_empty());
    }

    #[test]
    fn json_round_trips() {
        let mut cr = ClusterReport::new(3);
        cr.push(rank_report(0, 5));
        cr.push(rank_report(2, 7));
        let parsed = ClusterReport::from_json(&cr.to_json()).unwrap();
        assert_eq!(parsed, cr);
    }

    #[test]
    fn render_includes_matrix_and_collectives() {
        let mut cr = ClusterReport::new(2);
        cr.push(rank_report(0, 5));
        cr.push(rank_report(1, 5));
        let text = cr.render();
        assert!(text.contains("traffic matrix"));
        assert!(text.contains("barrier"));
        assert!(text.contains("r0"));
    }
}
