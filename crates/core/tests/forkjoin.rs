//! Tests for replicated stages (fork-join) and the order-restoring join.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fg_core::{map_stage, reorder_stage, FgError, PipelineCfg, Program, Rounds};

#[test]
fn replicated_stage_processes_every_round_once() {
    let count = Arc::new(AtomicU64::new(0));
    let mut prog = Program::new("forkjoin");
    let c = Arc::clone(&count);
    let work = prog.add_replicated_stage("work", 4, move |_i| {
        let c = Arc::clone(&c);
        map_stage(move |_, _| {
            c.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
    });
    prog.add_pipeline(
        PipelineCfg::new("p", 6, 16).rounds(Rounds::Count(200)),
        &[work],
    )
    .unwrap();
    let report = prog.run().unwrap();
    assert_eq!(count.load(Ordering::Relaxed), 200);
    // 4 replica threads + source + sink.
    assert_eq!(report.threads_spawned, 6);
    // Replica stats are individually reported.
    assert!(report.stage("work#0").is_some());
    assert!(report.stage("work#3").is_some());
}

#[test]
fn replication_speeds_up_slow_stage() {
    let run = |replicas: usize| {
        let mut prog = Program::new("speed");
        let slow = prog.add_replicated_stage("slow", replicas, |_| {
            map_stage(|_, _| {
                std::thread::sleep(Duration::from_millis(2));
                Ok(())
            })
        });
        prog.add_pipeline(
            PipelineCfg::new("p", 8, 16).rounds(Rounds::Count(60)),
            &[slow],
        )
        .unwrap();
        prog.run().unwrap().wall
    };
    let serial = run(1);
    let parallel = run(4);
    assert!(
        parallel.as_secs_f64() < serial.as_secs_f64() * 0.5,
        "4 replicas should cut sleep-bound wall time: serial {serial:?}, parallel {parallel:?}"
    );
}

#[test]
fn reorder_restores_round_order_after_replicas() {
    let seen = Arc::new(Mutex::new(Vec::<u64>::new()));
    let mut prog = Program::new("join");
    // Replicas sleep a data-dependent amount so rounds finish out of order.
    let scramble = prog.add_replicated_stage("scramble", 4, |_| {
        map_stage(|buf, _| {
            let jitter = (buf.round() * 7) % 5;
            std::thread::sleep(Duration::from_micros(200 * jitter));
            Ok(())
        })
    });
    let join = prog.add_stage("join", reorder_stage());
    let s2 = Arc::clone(&seen);
    let check = prog.add_stage(
        "check",
        map_stage(move |buf, _| {
            s2.lock().unwrap().push(buf.round());
            Ok(())
        }),
    );
    prog.add_pipeline(
        PipelineCfg::new("p", 8, 16).rounds(Rounds::Count(100)),
        &[scramble, join, check],
    )
    .unwrap();
    prog.run().unwrap();
    let got = seen.lock().unwrap().clone();
    assert_eq!(got, (0..100).collect::<Vec<u64>>());
}

#[test]
fn replica_error_cancels_program() {
    let mut prog = Program::new("failrep");
    let work = prog.add_replicated_stage("work", 3, |_i| {
        map_stage(move |buf, _| {
            // Whichever replica draws round 5 fails.
            if buf.round() == 5 {
                return Err(FgError::stage("work", "replica failure"));
            }
            Ok(())
        })
    });
    prog.add_pipeline(
        PipelineCfg::new("p", 4, 16).rounds(Rounds::Count(1000)),
        &[work],
    )
    .unwrap();
    let err = prog.run().unwrap_err();
    assert!(matches!(err, FgError::Stage { .. }), "got {err:?}");
}

#[test]
fn replicated_stage_in_two_pipelines_rejected() {
    let mut prog = Program::new("bad");
    let work = prog.add_replicated_stage("work", 2, |_| map_stage(|_, _| Ok(())));
    prog.add_pipeline(PipelineCfg::new("a", 2, 8).count(1), &[work])
        .unwrap();
    prog.add_pipeline(PipelineCfg::new("b", 2, 8).count(1), &[work])
        .unwrap();
    let err = prog.run().unwrap_err();
    assert!(matches!(err, FgError::Config(_)));
}

#[test]
fn single_replica_behaves_like_normal_stage() {
    let count = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&count);
    let mut prog = Program::new("one");
    let s = prog.add_replicated_stage("s", 1, move |_| {
        let c = Arc::clone(&c);
        map_stage(move |_, _| {
            c.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
    });
    prog.add_pipeline(PipelineCfg::new("p", 2, 8).rounds(Rounds::Count(17)), &[s])
        .unwrap();
    prog.run().unwrap();
    assert_eq!(count.load(Ordering::Relaxed), 17);
}

#[test]
fn replicated_stage_mid_pipeline() {
    // Data integrity through a replicated middle stage with reorder.
    let sum = Arc::new(AtomicU64::new(0));
    let mut prog = Program::new("mid");
    let fill = prog.add_stage(
        "fill",
        map_stage(|buf, _| {
            let r = buf.round();
            buf.copy_from(&r.to_le_bytes());
            Ok(())
        }),
    );
    let double = prog.add_replicated_stage("double", 3, |_| {
        map_stage(|buf, _| {
            let v = u64::from_le_bytes(buf.filled().try_into().unwrap()) * 2;
            buf.copy_from(&v.to_le_bytes());
            Ok(())
        })
    });
    let join = prog.add_stage("join", reorder_stage());
    let s2 = Arc::clone(&sum);
    let take = prog.add_stage(
        "take",
        map_stage(move |buf, _| {
            s2.fetch_add(
                u64::from_le_bytes(buf.filled().try_into().unwrap()),
                Ordering::Relaxed,
            );
            Ok(())
        }),
    );
    prog.add_pipeline(
        PipelineCfg::new("p", 6, 16).rounds(Rounds::Count(50)),
        &[fill, double, join, take],
    )
    .unwrap();
    prog.run().unwrap();
    assert_eq!(sum.load(Ordering::Relaxed), 2 * (49 * 50 / 2));
}
