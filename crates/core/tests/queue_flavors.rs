//! Property tests pitting the lock-free MPMC ring against the mutex-deque
//! oracle (the `Queue::new` default), via the benchmark-only [`BenchQueue`]
//! surface: same items in, same items out — no loss, no duplication, FIFO
//! per producer — plus the blocking contract around `close()` that every
//! flavor must honor (drain after close, then fail; close wakes everyone).

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use proptest::prelude::*;

use fg_core::qbench::{Batch, BenchQueue};

/// Tag a buffer with `(producer, seq)` so consumers can check identity and
/// per-producer order after the fact.
fn tagged(producer: u64, seq: u64) -> fg_core::Buffer {
    let mut b = BenchQueue::buffer(16);
    b.space_mut()[..8].copy_from_slice(&producer.to_le_bytes());
    b.space_mut()[8..16].copy_from_slice(&seq.to_le_bytes());
    b.set_filled(16);
    b
}

fn tag_of(b: &fg_core::Buffer) -> (u64, u64) {
    let bytes = b.filled();
    (
        u64::from_le_bytes(bytes[..8].try_into().unwrap()),
        u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
    )
}

/// Drive `producers` threads pushing `per_producer` tagged buffers each and
/// `consumers` threads draining until close; returns every tag each
/// consumer saw, in its observation order.
fn run_flavor(
    q: BenchQueue,
    producers: u64,
    per_producer: u64,
    consumers: usize,
) -> Vec<Vec<(u64, u64)>> {
    let q = Arc::new(q);
    let mut handles = Vec::new();
    for p in 0..producers {
        let q = Arc::clone(&q);
        handles.push(thread::spawn(move || {
            for i in 0..per_producer {
                assert!(q.push(tagged(p, i)), "queue closed under the producer");
            }
        }));
    }
    let mut consumers_h = Vec::new();
    for _ in 0..consumers {
        let q = Arc::clone(&q);
        consumers_h.push(thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(b) = q.pop() {
                seen.push(tag_of(&b));
            }
            seen
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    q.close();
    consumers_h.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Flatten, then assert the exact multiset `{(p, 0..per_producer)}` came
/// out: nothing lost, nothing duplicated, nothing invented.
fn assert_exact_multiset(seen: &[Vec<(u64, u64)>], producers: u64, per_producer: u64) {
    let mut all: Vec<(u64, u64)> = seen.iter().flatten().copied().collect();
    all.sort_unstable();
    let expected: Vec<(u64, u64)> = (0..producers)
        .flat_map(|p| (0..per_producer).map(move |i| (p, i)))
        .collect();
    assert_eq!(all, expected);
}

/// Per-producer FIFO: within one consumer's observation order, a given
/// producer's sequence numbers must be strictly increasing.  (Across
/// consumers no order is promised — each item goes to exactly one.)
fn assert_per_producer_fifo(seen: &[Vec<(u64, u64)>]) {
    for consumer in seen {
        let mut last: HashMap<u64, u64> = HashMap::new();
        for &(p, i) in consumer {
            if let Some(&prev) = last.get(&p) {
                assert!(i > prev, "producer {p}: {i} after {prev}");
            }
            last.insert(p, i);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The lock-free ring and the mutex oracle deliver the identical
    /// multiset of items under arbitrary producer/consumer/capacity mixes.
    /// (Capacity 1 is included deliberately: the Vyukov ring needs two
    /// slots, so a cap-1 lock-free request builds the mutex fallback —
    /// which must honor the same contract.)
    #[test]
    fn lock_free_matches_mutex_oracle(
        producers in 1u64..5,
        consumers in 1usize..5,
        per_producer in 1u64..60,
        capacity in 1usize..9,
    ) {
        for q in [BenchQueue::mpmc(capacity), BenchQueue::mpmc_lock_free(capacity)] {
            let seen = run_flavor(q, producers, per_producer, consumers);
            assert_exact_multiset(&seen, producers, per_producer);
        }
    }

    /// FIFO per producer holds for both MPMC flavors with a single
    /// consumer observing the global order (the only setup where the
    /// observation order is well-defined), and with several consumers
    /// each checking their own sub-order.
    #[test]
    fn per_producer_fifo_holds(
        producers in 1u64..4,
        consumers in 1usize..4,
        per_producer in 1u64..80,
        capacity in 1usize..6,
    ) {
        for q in [BenchQueue::mpmc(capacity), BenchQueue::mpmc_lock_free(capacity)] {
            let seen = run_flavor(q, producers, per_producer, consumers);
            assert_per_producer_fifo(&seen);
        }
    }

    /// Close-then-drain: whatever sat in the queue at close time is still
    /// handed out (in order), and only then do pops fail.
    #[test]
    fn drain_after_close_then_fail(
        prefill in 0u64..6,
        capacity in 6usize..10,
    ) {
        for q in [
            BenchQueue::mpmc(capacity),
            BenchQueue::mpmc_lock_free(capacity),
            BenchQueue::spsc(capacity),
        ] {
            for i in 0..prefill {
                assert!(q.try_push(tagged(0, i)));
            }
            q.close();
            assert!(!q.push(tagged(0, 999)), "push must fail after close");
            for i in 0..prefill {
                let b = q.pop().expect("closed queue still drains");
                assert_eq!(tag_of(&b), (0, i));
            }
            assert!(q.pop().is_none(), "drained closed queue must fail");
        }
    }
}

/// Close must wake every blocked thread — producers stuck on a full queue
/// and consumers stuck on an empty one — whether they are still spinning
/// or already parked.  A missed wake here hangs the whole test binary, so
/// the join is the assertion.
#[test]
fn close_wakes_all_blocked_threads_in_both_mpmc_flavors() {
    for make in [
        BenchQueue::mpmc as fn(usize) -> BenchQueue,
        BenchQueue::mpmc_lock_free as fn(usize) -> BenchQueue,
    ] {
        // Capacity 2, not 1: a cap-1 lock-free request falls back to the
        // mutex flavor, which would leave the ring's wake paths untested.
        let full = Arc::new(make(2));
        while full.try_push(tagged(0, 0)) {}
        let empty = Arc::new(make(2));
        let mut handles = Vec::new();
        for p in 0..3u64 {
            let q = Arc::clone(&full);
            handles.push(thread::spawn(move || {
                // Blocks: the queue is full and nobody pops.
                q.push(tagged(p, 1))
            }));
        }
        for _ in 0..3 {
            let q = Arc::clone(&empty);
            handles.push(thread::spawn(move || {
                // Blocks: the queue is empty and nobody pushes.
                q.pop().is_none()
            }));
        }
        // Let some threads reach the parked slow path while others spin.
        thread::sleep(std::time::Duration::from_millis(20));
        full.close();
        empty.close();
        for h in handles {
            h.join().unwrap();
        }
    }
}

/// The Vyukov ring's documented precondition is capacity >= 2 (one slot
/// cannot keep consecutive laps' sequence values distinct), so a cap-1
/// lock-free request must degrade to the mutex flavor rather than build a
/// racy ring.
#[test]
fn capacity_one_lock_free_falls_back_to_mutex() {
    assert_eq!(BenchQueue::mpmc_lock_free(1).flavor(), "mutex");
    assert_eq!(BenchQueue::mpmc_lock_free(2).flavor(), "lockfree");
}

/// The SPSC ring is untouched by the MPMC work: a 1-producer/1-consumer
/// ping-pong through the new builder surface still delivers every item in
/// order, batched pops included.
#[test]
fn spsc_flavor_unaffected() {
    let q = Arc::new(BenchQueue::spsc(4));
    assert_eq!(q.flavor(), "spsc");
    let producer = {
        let q = Arc::clone(&q);
        thread::spawn(move || {
            for i in 0..500u64 {
                assert!(q.push(tagged(0, i)));
            }
            q.close();
        })
    };
    let mut batch = Batch::default();
    let mut next = 0u64;
    while q.pop_many(8, &mut batch) {
        batch.drain_buffers(|b| {
            assert_eq!(tag_of(&b), (0, next));
            next += 1;
        });
    }
    producer.join().unwrap();
    assert_eq!(next, 500);
    assert_eq!(q.cas_retries(), 0, "spsc path never CASes");
}
