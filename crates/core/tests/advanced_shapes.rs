//! Tests for less-common pipeline shapes: virtual stages mid-chain, two
//! virtual stages in one chain, early stop on counted pipelines, common
//! stages combined with virtual groups, and discard semantics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fg_core::{map_stage, Buffer, PipelineCfg, Program, Rounds, Stage, StageCtx};

/// A virtual stage that is *not* the first stage of its pipelines: per-
/// pipeline feeder stages push into the shared queue.
#[test]
fn virtual_stage_mid_chain() {
    const K: usize = 5;
    const ROUNDS: u64 = 20;
    let seen = Arc::new(Mutex::new(vec![0u64; K]));

    let mut prog = Program::new("midchain");
    let mut feeders = Vec::new();
    for lane in 0..K {
        feeders.push(prog.add_stage(
            format!("feed{lane}"),
            map_stage(move |buf: &mut Buffer, _ctx: &mut StageCtx| {
                buf.meta = lane as u64;
                Ok(())
            }),
        ));
    }
    let s2 = Arc::clone(&seen);
    let tally = prog.add_virtual_stage(
        "tally",
        map_stage(move |buf, _ctx| {
            s2.lock().unwrap()[buf.meta as usize] += 1;
            Ok(())
        }),
    );
    for (lane, feeder) in feeders.iter().enumerate() {
        prog.add_pipeline(
            PipelineCfg::new(format!("p{lane}"), 2, 8).rounds(Rounds::Count(ROUNDS)),
            &[*feeder, tally],
        )
        .unwrap();
    }
    let report = prog.run().unwrap();
    for (lane, &count) in seen.lock().unwrap().iter().enumerate() {
        assert_eq!(count, ROUNDS, "lane {lane}");
    }
    // K feeder threads + 1 virtual tally + 1 shared source + 1 shared sink.
    assert_eq!(report.threads_spawned, K + 3);
}

/// Two virtual stages chained: the queue between them is also shared.
#[test]
fn two_virtual_stages_in_chain() {
    const K: usize = 4;
    const ROUNDS: u64 = 12;
    let total = Arc::new(AtomicU64::new(0));

    let mut prog = Program::new("doublevirtual");
    let stamp = prog.add_virtual_stage(
        "stamp",
        map_stage(|buf: &mut Buffer, _ctx: &mut StageCtx| {
            buf.meta = buf.round() + 1;
            Ok(())
        }),
    );
    let t2 = Arc::clone(&total);
    let add = prog.add_virtual_stage(
        "add",
        map_stage(move |buf, _ctx| {
            t2.fetch_add(buf.meta, Ordering::Relaxed);
            Ok(())
        }),
    );
    for lane in 0..K {
        prog.add_pipeline(
            PipelineCfg::new(format!("p{lane}"), 2, 8).rounds(Rounds::Count(ROUNDS)),
            &[stamp, add],
        )
        .unwrap();
    }
    let report = prog.run().unwrap();
    // Each lane contributes sum(1..=ROUNDS).
    let per_lane = ROUNDS * (ROUNDS + 1) / 2;
    assert_eq!(total.load(Ordering::Relaxed), K as u64 * per_lane);
    // 2 virtual stages + shared source + shared sink.
    assert_eq!(report.threads_spawned, 4);
}

/// ctx.stop() on a Count pipeline cuts it short cleanly.
#[test]
fn early_stop_on_counted_pipeline() {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = Arc::clone(&seen);
    let mut prog = Program::new("earlystop");
    let taker = prog.add_stage(
        "taker",
        Box::new(move |ctx: &mut StageCtx| {
            let pid = ctx.pipelines().next().unwrap();
            while let Some(buf) = ctx.accept()? {
                let n = s2.fetch_add(1, Ordering::Relaxed) + 1;
                ctx.convey(buf)?;
                if n == 5 {
                    ctx.stop(pid)?;
                    return Ok(());
                }
            }
            Ok(())
        }) as Box<dyn Stage>,
    );
    prog.add_pipeline(
        PipelineCfg::new("p", 2, 8).rounds(Rounds::Count(1_000_000)),
        &[taker],
    )
    .unwrap();
    prog.run().unwrap();
    let n = seen.load(Ordering::Relaxed);
    assert!((5..20).contains(&n), "took {n} buffers before stop");
}

/// A stage can discard every buffer (acting as a pure consumer feeding
/// nothing downstream) and the pipeline still terminates.
#[test]
fn discard_only_stage() {
    let mut prog = Program::new("discard");
    let eat = prog.add_stage(
        "eat",
        Box::new(move |ctx: &mut StageCtx| {
            while let Some(buf) = ctx.accept()? {
                ctx.discard(buf)?;
            }
            Ok(())
        }) as Box<dyn Stage>,
    );
    let count = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&count);
    let after = prog.add_stage(
        "after",
        map_stage(move |_, _| {
            c2.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }),
    );
    prog.add_pipeline(
        PipelineCfg::new("p", 3, 8).rounds(Rounds::Count(30)),
        &[eat, after],
    )
    .unwrap();
    prog.run().unwrap();
    // Everything was discarded upstream; `after` sees only the caboose.
    assert_eq!(count.load(Ordering::Relaxed), 0);
}

/// Intersecting + virtual at once: the dsort pass-2 shape, standalone —
/// virtual feeders into a common collector that also owns an output
/// pipeline, all buffer counts preserved.
#[test]
fn virtual_feeders_into_common_collector() {
    const K: usize = 8;
    const ROUNDS: u64 = 10;

    struct Collector {
        got: Arc<AtomicU64>,
    }
    impl Stage for Collector {
        fn run(&mut self, ctx: &mut StageCtx) -> fg_core::Result<()> {
            let pids: Vec<_> = ctx.pipelines().collect();
            let (ins, out) = pids.split_at(pids.len() - 1);
            let out = out[0];
            let mut emitted = 0u64;
            for &p in ins {
                while let Some(buf) = ctx.accept_from(p)? {
                    self.got.fetch_add(1, Ordering::Relaxed);
                    ctx.discard(buf)?;
                    // Emit one output buffer per 4 inputs.
                    if self.got.load(Ordering::Relaxed).is_multiple_of(4) {
                        if let Some(ob) = ctx.accept_from(out)? {
                            ctx.convey(ob)?;
                            emitted += 1;
                        }
                    }
                }
            }
            ctx.stop(out)?;
            let _ = emitted;
            Ok(())
        }
    }

    let got = Arc::new(AtomicU64::new(0));
    let outs = Arc::new(AtomicU64::new(0));
    let mut prog = Program::new("combined");
    let feed = prog.add_virtual_stage("feed", map_stage(|_, _| Ok(())));
    let collect = prog.add_stage(
        "collect",
        Box::new(Collector {
            got: Arc::clone(&got),
        }),
    );
    let o2 = Arc::clone(&outs);
    let drain = prog.add_stage(
        "drain",
        map_stage(move |_, _| {
            o2.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }),
    );
    for lane in 0..K {
        prog.add_pipeline(
            PipelineCfg::new(format!("v{lane}"), 2, 8).rounds(Rounds::Count(ROUNDS)),
            &[feed, collect],
        )
        .unwrap();
    }
    prog.add_pipeline(
        PipelineCfg::new("out", 2, 8).rounds(Rounds::UntilStopped),
        &[collect, drain],
    )
    .unwrap();
    prog.run().unwrap();
    assert_eq!(got.load(Ordering::Relaxed), K as u64 * ROUNDS);
    assert_eq!(outs.load(Ordering::Relaxed), K as u64 * ROUNDS / 4);
}

/// The same stage at different positions in two pipelines (first in one,
/// second in the other).
#[test]
fn common_stage_at_different_positions() {
    let hits = Arc::new(AtomicU64::new(0));
    let mut prog = Program::new("positions");
    let pre = prog.add_stage("pre", map_stage(|_, _| Ok(())));
    let h2 = Arc::clone(&hits);
    let shared = prog.add_stage(
        "shared",
        Box::new(move |ctx: &mut StageCtx| {
            let pids: Vec<_> = ctx.pipelines().collect();
            for &p in &pids {
                while let Some(buf) = ctx.accept_from(p)? {
                    h2.fetch_add(1, Ordering::Relaxed);
                    ctx.convey(buf)?;
                }
            }
            Ok(())
        }) as Box<dyn Stage>,
    );
    prog.add_pipeline(PipelineCfg::new("a", 2, 8).count(6), &[shared])
        .unwrap();
    prog.add_pipeline(PipelineCfg::new("b", 2, 8).count(7), &[pre, shared])
        .unwrap();
    prog.run().unwrap();
    assert_eq!(hits.load(Ordering::Relaxed), 13);
}
