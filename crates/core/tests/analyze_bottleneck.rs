//! End-to-end bottleneck analysis: inject a deliberately slow middle
//! stage into a three-stage pipeline and check that `diagnose` names it
//! as limiting, attributes backpressure upstream and starvation
//! downstream, and recommends splitting or replicating it.

use std::sync::Arc;
use std::time::Duration;

use fg_core::{
    diagnose, map_stage, MetricsRegistry, PipelineCfg, Program, Rounds, Sampler, SamplerCfg,
    StageVerdict,
};

#[test]
fn injected_slow_middle_stage_is_diagnosed() {
    let registry = Arc::new(MetricsRegistry::new());
    let mut prog = Program::new("bottleneck");
    prog.set_metrics(Arc::clone(&registry));
    let up = prog.add_stage("up", map_stage(|_, _| Ok(())));
    let slow = prog.add_stage(
        "slow",
        map_stage(|_, _| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(())
        }),
    );
    let down = prog.add_stage("down", map_stage(|_, _| Ok(())));
    // Few buffers so the slow stage's input queue pins at capacity while
    // the downstream queue runs dry.
    prog.add_pipeline(
        PipelineCfg::new("p", 3, 64).rounds(Rounds::Count(50)),
        &[up, slow, down],
    )
    .unwrap();

    let sampler = Sampler::start(
        Arc::clone(&registry),
        SamplerCfg {
            interval: Duration::from_millis(1),
            capacity: 4096,
        },
    );
    let report = prog.run().unwrap();
    let series = sampler.stop();
    assert!(
        series.len() >= 10,
        "a ~100ms run at 1ms cadence should collect many samples, got {}",
        series.len()
    );

    let d = diagnose(&report, &series);
    assert_eq!(
        d.limiting.as_deref(),
        Some("slow"),
        "diagnosis:\n{}",
        d.render()
    );

    let stage = |name: &str| {
        d.stages
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no diagnosis for stage {name}"))
    };
    assert_eq!(stage("slow").verdict, StageVerdict::Busy);
    // The stage feeding the bottleneck spends its time blocked conveying.
    assert_eq!(stage("up").verdict, StageVerdict::Backpressured);
    // The stage downstream of the bottleneck waits on accepts.
    assert_eq!(stage("down").verdict, StageVerdict::Starved);

    let recs = d.recommendations.join("\n");
    assert!(
        recs.contains("slow") && (recs.contains("split") || recs.contains("replicate")),
        "expected split/replicate advice for `slow`:\n{recs}"
    );
    // The rendered report names the limiting stage for human readers.
    assert!(d.render().contains("limiting stage: `slow`"));
}
