//! Tests for the stall watchdog, the flight-recorder ring, and the causal
//! trace pipeline: wedged programs are caught and blamed, healthy-but-slow
//! programs are left alone, and a traced run yields a reconstructible
//! critical path plus a Perfetto-loadable Chrome trace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use fg_core::{
    critical_path, map_stage, Buffer, FgError, Json, PipelineCfg, Program, Result, Rounds, Stage,
    StageCtx, TraceKind, TraceSink, WatchdogCfg,
};

/// Accepts buffers and never lets go — wedges any bounded-pool pipeline.
struct Hoarder {
    stash: Vec<Buffer>,
}

impl Stage for Hoarder {
    fn run(&mut self, ctx: &mut StageCtx) -> Result<()> {
        while let Some(buf) = ctx.accept()? {
            self.stash.push(buf);
        }
        Ok(())
    }
}

fn temp_artifact(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("fg-watchdog-{tag}-{}.json", std::process::id()))
}

#[test]
fn watchdog_fires_on_wedged_pipeline_and_names_culprit() {
    let artifact = temp_artifact("wedged");
    let mut prog = Program::new("wedge");
    let hoard = prog.add_stage("hoard", Box::new(Hoarder { stash: Vec::new() }));
    let drain = prog.add_stage("drain", map_stage(|_, _| Ok(())));
    prog.add_pipeline(
        PipelineCfg::new("p", 2, 64).rounds(Rounds::Count(1000)),
        &[hoard, drain],
    )
    .unwrap();
    prog.set_watchdog(
        WatchdogCfg::new(Duration::from_millis(300)).artifact(artifact.to_str().unwrap()),
    );

    match prog.run() {
        Err(FgError::Stalled { culprit }) => {
            assert!(
                culprit.contains("hoard"),
                "culprit should be the hoarding stage, got `{culprit}`"
            );
        }
        other => panic!("expected FgError::Stalled, got {other:?}"),
    }

    // The post-mortem artifact is valid JSON naming the same culprit and
    // carrying per-thread diagnostics.
    let text = std::fs::read_to_string(&artifact).expect("post-mortem artifact written");
    let _ = std::fs::remove_file(&artifact);
    let pm = Json::parse(&text).expect("post-mortem parses as JSON");
    assert_eq!(pm.get("program").and_then(Json::as_str), Some("wedge"));
    assert!(pm
        .get("culprit")
        .and_then(Json::as_str)
        .is_some_and(|c| c.contains("hoard")));
    let threads = pm.get("threads").and_then(Json::as_arr).unwrap();
    assert!(!threads.is_empty(), "post-mortem must list threads");
    for t in threads {
        assert!(t.get("thread").and_then(Json::as_str).is_some());
        assert!(t.get("state").and_then(Json::as_str).is_some());
        assert!(t.get("last_spans").and_then(Json::as_arr).is_some());
    }
}

#[test]
fn watchdog_spares_a_slow_but_progressing_pipeline() {
    // Each round takes ~20 ms, far longer than a "fast" pipeline but far
    // shorter than the 500 ms watchdog window: spans keep arriving, the
    // activity clock keeps advancing, and the watchdog must stay quiet.
    let done = Arc::new(AtomicU64::new(0));
    let done2 = Arc::clone(&done);
    let mut prog = Program::new("slowpoke");
    let crawl = prog.add_stage(
        "crawl",
        map_stage(move |_, _| {
            std::thread::sleep(Duration::from_millis(20));
            done2.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }),
    );
    prog.add_pipeline(
        PipelineCfg::new("p", 2, 16).rounds(Rounds::Count(10)),
        &[crawl],
    )
    .unwrap();
    prog.with_watchdog(Duration::from_millis(500));
    prog.run()
        .expect("progressing pipeline must not be aborted");
    assert_eq!(done.load(Ordering::Relaxed), 10);
}

#[test]
fn traced_run_reconstructs_critical_path() {
    let sink = TraceSink::new();
    let mut prog = Program::new("traced");
    prog.set_trace_sink(Arc::clone(&sink));
    let slow = prog.add_stage(
        "slow",
        map_stage(|_, _| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(())
        }),
    );
    let fast = prog.add_stage("fast", map_stage(|_, _| Ok(())));
    prog.add_pipeline(
        PipelineCfg::new("p", 2, 16).rounds(Rounds::Count(8)),
        &[slow, fast],
    )
    .unwrap();
    prog.run().unwrap();

    let logs = sink.collect();
    assert!(
        logs.iter().any(|l| !l.spans.is_empty()),
        "a traced run must record spans"
    );
    let cp = critical_path(&logs);
    assert_eq!(cp.rounds.len(), 8, "one traced journey per round");
    assert!(cp.total_ns > 0);
    for round in &cp.rounds {
        assert!(!round.segments.is_empty());
        assert!(round.end_ns >= round.start_ns);
    }
    // The sleeping stage dominates everyone's wall clock.
    let slow_work = cp.kind_total("slow", TraceKind::Work);
    assert!(
        slow_work >= 8 * 2_000_000,
        "slow stage work must cover its sleeps: {slow_work}ns"
    );
    let dominant = cp.dominant_stage().expect("non-empty path has a dominant");
    assert_eq!(dominant, "slow");
}

#[test]
fn chrome_trace_parses_and_carries_flow_events() {
    let sink = TraceSink::new();
    let mut prog = Program::new("chrome");
    prog.set_trace_sink(Arc::clone(&sink));
    let a = prog.add_stage("a", map_stage(|_, _| Ok(())));
    let b = prog.add_stage("b", map_stage(|_, _| Ok(())));
    prog.add_pipeline(
        PipelineCfg::new("p", 3, 16).rounds(Rounds::Count(6)),
        &[a, b],
    )
    .unwrap();
    prog.run().unwrap();

    let trace = Json::parse(&sink.to_chrome_trace()).expect("chrome trace is valid JSON");
    let events = trace.get("traceEvents").and_then(Json::as_arr).unwrap();
    let phase = |e: &Json| e.get("ph").and_then(Json::as_str).map(str::to_owned);
    let slices = events
        .iter()
        .filter(|e| phase(e).as_deref() == Some("X"))
        .count();
    assert!(slices > 0, "trace must contain duration slices");

    // Every traced round (6 of them) threads a flow through >= 2 spans, so
    // each gets a start and a binding finish.
    // Flow ids are hex strings (numeric ids above 2^53 would alias as f64).
    let flow_ids = |ph: &str| {
        events
            .iter()
            .filter(|e| phase(e).as_deref() == Some(ph))
            .filter_map(|e| e.get("id").and_then(Json::as_str))
            .map(|s| u64::from_str_radix(s, 16).expect("hex flow id"))
            .collect::<std::collections::BTreeSet<u64>>()
    };
    let starts = flow_ids("s");
    let finishes = flow_ids("f");
    assert_eq!(starts.len(), 6, "one flow per traced round: {starts:?}");
    assert_eq!(starts, finishes, "every flow start has a matching finish");
    for e in events.iter().filter(|e| phase(e).as_deref() == Some("f")) {
        assert_eq!(
            e.get("bp").and_then(Json::as_str),
            Some("e"),
            "finish events bind to the enclosing slice"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The flight recorder keeps exactly the newest `cap` records, oldest
    /// first, no matter how many times it wraps.
    #[test]
    fn flight_recorder_ring_keeps_newest_records_in_order(
        cap in 1usize..12,
        writes in 0u64..64,
    ) {
        let sink = TraceSink::with_ring_capacity(cap);
        let ring = sink.register_thread("prop/ring");
        for i in 0..writes {
            ring.record(TraceKind::Work, 0, i, i + 1, i * 10, i * 10 + 5);
        }
        prop_assert_eq!(ring.recorded(), writes);
        let snap = ring.snapshot();
        let kept = (writes as usize).min(cap);
        prop_assert_eq!(snap.len(), kept);
        let first = writes - kept as u64;
        for (k, rec) in snap.iter().enumerate() {
            let i = first + k as u64;
            prop_assert_eq!(rec.round, i, "round {} at slot {}", i, k);
            prop_assert_eq!(rec.trace_id, i + 1);
            prop_assert_eq!(rec.start_ns, i * 10);
            prop_assert_eq!(rec.end_ns, i * 10 + 5);
        }
    }
}
