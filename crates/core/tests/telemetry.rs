//! End-to-end tests of the telemetry HTTP endpoint: bind an ephemeral
//! port, scrape it with a raw TCP client, and validate that `/metrics`
//! really is Prometheus text exposition format 0.0.4.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use fg_core::{MetricsRegistry, TelemetryServer};

/// Issue one `GET <path>` and return `(status line, headers, body)`.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, HashMap<String, String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: fg\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let mut lines = head.lines();
    let status = lines.next().expect("status line").to_string();
    let headers = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
        .collect();
    (status, headers, body.to_string())
}

/// Validate Prometheus text format 0.0.4: every line is a `# TYPE` comment
/// or a `name[{labels}] value` sample; `_bucket` series are cumulative and
/// end with `+Inf` equal to `_count`.
fn assert_valid_prometheus(body: &str) {
    let mut bucket_last: HashMap<String, u64> = HashMap::new();
    let mut inf: HashMap<String, u64> = HashMap::new();
    let mut counts: HashMap<String, u64> = HashMap::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("type line has a name");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name {name:?}"
            );
            let kind = parts.next().expect("type line has a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "bad kind {kind:?}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment {line:?}");
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("unparsable sample value in {line:?}");
        });
        let name = name_and_labels
            .split_once('{')
            .map_or(name_and_labels, |(n, _)| n);
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad sample name {name:?} in {line:?}"
        );
        if let Some(base) = name.strip_suffix("_bucket") {
            let le = name_and_labels
                .split_once("le=\"")
                .and_then(|(_, rest)| rest.split_once('"'))
                .map(|(le, _)| le.to_string())
                .expect("bucket has le label");
            let prev = bucket_last.get(base).copied().unwrap_or(0);
            assert!(
                value as u64 >= prev,
                "bucket series for {base} not cumulative at {line:?}"
            );
            bucket_last.insert(base.to_string(), value as u64);
            if le == "+Inf" {
                inf.insert(base.to_string(), value as u64);
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            counts.insert(base.to_string(), value as u64);
        }
    }
    for (base, n) in &inf {
        assert_eq!(
            counts.get(base),
            Some(n),
            "histogram {base}: +Inf bucket must equal _count"
        );
    }
    assert!(
        !inf.is_empty(),
        "expected at least one histogram in the scrape"
    );
}

fn populated_registry() -> Arc<MetricsRegistry> {
    let reg = Arc::new(MetricsRegistry::new());
    reg.counter("core/accepts").add(42);
    reg.gauge("core/queue_depth/p[0]").set(3);
    let h = reg.histogram("disk/d0/read_ns");
    for v in [100, 1_000, 10_000, 100_000] {
        h.record(v);
    }
    reg
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_text() {
    let reg = populated_registry();
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
    let (status, headers, body) = http_get(server.local_addr(), "/metrics");
    assert!(status.contains("200"), "status was {status}");
    assert_eq!(
        headers.get("content-type").map(String::as_str),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    assert_eq!(
        headers.get("content-length").and_then(|v| v.parse().ok()),
        Some(body.len())
    );
    assert!(body.contains("fg_core_accepts 42"), "body:\n{body}");
    assert!(body.contains("fg_core_queue_depth_p_0"), "body:\n{body}");
    assert_valid_prometheus(&body);
}

#[test]
fn zero_valued_gauges_keep_their_type_lines() {
    // Regression guard: a gauge that is registered but still zero at the
    // first scrape (a write-behind queue that never filled, say) must
    // still be announced with a `# TYPE` line and a zero sample —
    // dashboards discover series from the first scrape.
    let reg = Arc::new(MetricsRegistry::new());
    reg.gauge("core/idle_gauge").set(0);
    reg.counter("core/idle_counter");
    // The resource profiler's gauges follow the same discovery contract: a
    // thread that never accumulated CPU (or an allocator tag that never
    // fired) still announces its series on the first scrape.
    reg.gauge("resource/thread/sort/utime_ns").set(0);
    reg.gauge("resource/alloc/sort/count").set(0);
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
    let (_, _, body) = http_get(server.local_addr(), "/metrics");
    assert!(
        body.contains("# TYPE fg_core_idle_gauge gauge"),
        "zero gauge lost its TYPE line, body:\n{body}"
    );
    assert!(body.contains("fg_core_idle_gauge 0"), "body:\n{body}");
    assert!(
        body.contains("# TYPE fg_core_idle_counter counter"),
        "zero counter lost its TYPE line, body:\n{body}"
    );
    assert!(body.contains("fg_core_idle_counter 0"), "body:\n{body}");
    assert!(
        body.contains("# TYPE fg_resource_thread_sort_utime_ns gauge"),
        "zero resource gauge lost its TYPE line, body:\n{body}"
    );
    assert!(
        body.contains("fg_resource_alloc_sort_count 0"),
        "body:\n{body}"
    );
}

#[test]
fn scrape_counter_increments_per_request() {
    let reg = populated_registry();
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
    let (_, _, first) = http_get(server.local_addr(), "/metrics");
    let (_, _, second) = http_get(server.local_addr(), "/metrics");
    // Each request bumps the counter before snapshotting, so a scrape
    // observes itself.
    assert!(first.contains("fg_telemetry_scrapes 1"), "body:\n{first}");
    assert!(second.contains("fg_telemetry_scrapes 2"), "body:\n{second}");
}

#[test]
fn report_endpoint_renders_dashboard() {
    let reg = populated_registry();
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
    let (status, _, body) = http_get(server.local_addr(), "/report");
    assert!(status.contains("200"), "status was {status}");
    assert!(body.contains("core/accepts"), "body:\n{body}");
}

#[test]
fn unknown_path_is_404_and_server_survives() {
    let reg = populated_registry();
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
    let (status, _, body) = http_get(server.local_addr(), "/nope");
    assert!(status.contains("404"), "status was {status}");
    // The 404 body tells the operator where to look instead.
    for route in [
        "/metrics",
        "/report",
        "/control",
        "/cluster",
        "/resources",
        "/healthz",
    ] {
        assert!(body.contains(route), "404 body missing {route}: {body}");
    }
    // The listener keeps serving after a 404.
    let (status, _, _) = http_get(server.local_addr(), "/metrics");
    assert!(status.contains("200"), "status was {status}");
}

#[test]
fn healthz_answers_ok() {
    let reg = populated_registry();
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
    let (status, headers, body) = http_get(server.local_addr(), "/healthz");
    assert!(status.contains("200"), "status was {status}");
    assert_eq!(body, "ok\n");
    assert_eq!(
        headers.get("content-length").and_then(|v| v.parse().ok()),
        Some(body.len())
    );
}

#[test]
fn control_endpoint_reports_inactive_without_a_controller() {
    let reg = populated_registry();
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
    let (status, headers, body) = http_get(server.local_addr(), "/control");
    assert!(status.contains("200"), "status was {status}");
    assert_eq!(
        headers.get("content-type").map(String::as_str),
        Some("application/json; charset=utf-8")
    );
    let j = fg_core::Json::parse(&body).expect("control body is JSON");
    assert_eq!(
        j.get("active").and_then(fg_core::Json::as_bool),
        Some(false)
    );
}

#[test]
fn control_endpoint_serves_the_installed_status() {
    let reg = populated_registry();
    let status_handle = Arc::new(fg_core::ControlStatus::default());
    let server = TelemetryServer::bind_full(
        "127.0.0.1:0",
        Arc::clone(&reg),
        None,
        Some(Arc::clone(&status_handle)),
    )
    .expect("bind");
    // Before the controller publishes anything, the stub is served.
    let (_, _, body) = http_get(server.local_addr(), "/control");
    let j = fg_core::Json::parse(&body).expect("control body is JSON");
    assert_eq!(
        j.get("active").and_then(fg_core::Json::as_bool),
        Some(false)
    );
}

#[test]
fn cluster_endpoint_serves_the_installed_report() {
    use std::time::Duration;

    let reg = populated_registry();
    // Without a cluster source, the route 404s.
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
    let (status, _, _) = http_get(server.local_addr(), "/cluster");
    assert!(status.contains("404"), "status was {status}");
    drop(server);

    // With one, it serves the merged report as JSON.
    let mut cr = fg_core::ClusterReport::new(2);
    for rank in 0..2 {
        cr.push(fg_core::RankReport {
            rank,
            wall: Duration::from_millis(10),
            reports: Vec::new(),
            metrics: fg_core::MetricsSnapshot::default(),
        });
    }
    let body_src = cr.to_json();
    let server = TelemetryServer::bind_all(
        "127.0.0.1:0",
        Arc::clone(&reg),
        None,
        None,
        Some(Arc::new(move || body_src.clone())),
        None,
    )
    .expect("bind");
    let (status, headers, body) = http_get(server.local_addr(), "/cluster");
    assert!(status.contains("200"), "status was {status}");
    assert_eq!(
        headers.get("content-type").map(String::as_str),
        Some("application/json; charset=utf-8")
    );
    let parsed = fg_core::ClusterReport::from_json(&body).expect("cluster body parses");
    assert_eq!(parsed, cr);
}

#[test]
fn resources_endpoint_serves_a_live_sample() {
    let reg = populated_registry();
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
    let (status, headers, body) = http_get(server.local_addr(), "/resources");
    assert!(status.contains("200"), "status was {status}");
    assert_eq!(
        headers.get("content-type").map(String::as_str),
        Some("application/json; charset=utf-8")
    );
    let j = fg_core::Json::parse(&body).expect("resources body is JSON");
    // The sample is taken live per request; without a ledger installed the
    // member is absent, and the allocator flag reflects this binary (the
    // test harness does not install FgAlloc).
    assert!(j.get("ledger").is_none(), "no ledger was installed: {body}");
    assert_eq!(
        j.get("alloc_tracking").and_then(fg_core::Json::as_bool),
        Some(false)
    );
    // Each request bumps the same scrape counter as /metrics.
    let (_, _, metrics) = http_get(server.local_addr(), "/metrics");
    assert!(
        metrics.contains("fg_telemetry_scrapes 2"),
        "body:\n{metrics}"
    );
}

#[test]
fn resources_endpoint_reports_the_installed_ledger() {
    let reg = populated_registry();
    let ledger = Arc::new(fg_core::MemoryLedger::with_budget(64 << 20));
    ledger.stage("sort").acquire(8 << 20);
    ledger.charge_pool(8 << 20);
    let server = TelemetryServer::bind_all(
        "127.0.0.1:0",
        Arc::clone(&reg),
        None,
        None,
        None,
        Some(Arc::clone(&ledger)),
    )
    .expect("bind");
    let (status, _, body) = http_get(server.local_addr(), "/resources");
    assert!(status.contains("200"), "status was {status}");
    let j = fg_core::Json::parse(&body).expect("resources body is JSON");
    let l = j.get("ledger").expect("ledger member present");
    assert_eq!(
        l.get("budget_bytes").and_then(fg_core::Json::as_u64),
        Some(64 << 20)
    );
    assert_eq!(
        l.get("total_bytes").and_then(fg_core::Json::as_u64),
        Some(8 << 20)
    );
    let stages = l.get("stages").and_then(fg_core::Json::as_arr).unwrap();
    assert_eq!(
        stages[0].get("stage").and_then(fg_core::Json::as_str),
        Some("sort")
    );
    assert_eq!(
        stages[0].get("bytes").and_then(fg_core::Json::as_u64),
        Some(8 << 20)
    );
}
