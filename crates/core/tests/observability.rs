//! End-to-end tests of the observability layer: observer hooks, the metrics
//! registry, queue-depth reporting, and the JSON / Chrome-trace exports.

use std::sync::Arc;
use std::time::Duration;

use fg_core::{
    map_stage, CountingObserver, Json, MetricsObserver, MetricsRegistry, PipelineCfg, Program,
    Report, Rounds,
};

const ROUNDS: u64 = 25;

fn two_stage_program() -> Program {
    let mut prog = Program::new("obs");
    let fill = prog.add_stage(
        "fill",
        map_stage(|buf, _ctx| {
            buf.space_mut()[0] = buf.round() as u8;
            buf.set_filled(1);
            Ok(())
        }),
    );
    let check = prog.add_stage(
        "check",
        map_stage(|buf, _ctx| {
            assert_eq!(buf.filled()[0], buf.round() as u8);
            Ok(())
        }),
    );
    let cfg = PipelineCfg::new("p", 3, 64).rounds(Rounds::Count(ROUNDS));
    prog.add_pipeline(cfg, &[fill, check]).unwrap();
    prog
}

#[test]
fn counting_observer_sees_every_event() {
    let obs = Arc::new(CountingObserver::new());
    let mut prog = two_stage_program();
    prog.set_observer(Arc::clone(&obs) as Arc<dyn fg_core::Observer>);
    let report = prog.run().unwrap();

    assert_eq!(obs.stage_starts(), 2);
    assert_eq!(obs.stage_exits(), 2);
    // Each of the two stages accepts and conveys every round's buffer.
    assert_eq!(obs.accepts(), 2 * ROUNDS);
    assert_eq!(obs.conveys(), 2 * ROUNDS);
    assert_eq!(obs.round_begins(), ROUNDS);
    assert_eq!(obs.source_emits(), ROUNDS);
    assert_eq!(obs.sink_recycles(), ROUNDS);

    // The observer agrees with the report's own accounting.
    assert_eq!(report.stage("fill").unwrap().buffers_in, ROUNDS);
    assert_eq!(report.stage("check").unwrap().buffers_out, ROUNDS);
}

#[test]
fn metrics_registry_collects_core_metrics_and_queue_depths() {
    let registry = Arc::new(MetricsRegistry::new());
    let mut prog = two_stage_program();
    prog.set_metrics(Arc::clone(&registry));
    prog.set_observer(Arc::new(MetricsObserver::new(&registry)));
    let report = prog.run().unwrap();

    assert_eq!(report.metrics.counter("core/accepts"), Some(2 * ROUNDS));
    assert_eq!(report.metrics.counter("core/conveys"), Some(2 * ROUNDS));
    assert_eq!(report.metrics.counter("core/rounds"), Some(ROUNDS));
    assert_eq!(report.metrics.counter("core/recycles"), Some(ROUNDS));
    let waits = report.metrics.histogram("core/accept_wait_ns").unwrap();
    assert_eq!(waits.count, 2 * ROUNDS);

    // Every wired queue reports depth statistics and a live gauge.
    assert!(!report.queues.is_empty());
    for q in &report.queues {
        assert!(q.max_depth <= q.capacity, "{q:?}");
        assert!(q.max_depth > 0, "every queue carried traffic: {q:?}");
        let gauge = report
            .metrics
            .gauge(&format!("core/queue_depth/{}", q.name))
            .unwrap_or_else(|| panic!("no gauge for queue {:?}", q.name));
        assert_eq!(gauge.peak as usize, q.max_depth);
    }

    // The dashboard renders every section for this run.
    let dash = report.render_dashboard();
    assert!(dash.contains("== queues =="));
    assert!(dash.contains("== metrics: core =="));
    assert!(dash.contains("core/accepts = 50"));
}

#[test]
fn no_observer_run_reports_empty_metrics() {
    let report = two_stage_program().run().unwrap();
    assert!(report.metrics.is_empty());
    // Queue high-water marks are tracked unconditionally (they live inside
    // the queue's existing lock), so they appear even without a registry.
    assert!(!report.queues.is_empty());
}

#[test]
fn report_json_round_trips() {
    let registry = Arc::new(MetricsRegistry::new());
    let mut prog = two_stage_program();
    prog.enable_tracing();
    prog.set_metrics(Arc::clone(&registry));
    prog.set_observer(Arc::new(MetricsObserver::new(&registry)));
    let report = prog.run().unwrap();

    let text = report.to_json();
    let parsed = Report::from_json(&text).expect("report JSON parses");
    assert_eq!(parsed, report);
}

#[test]
fn chrome_trace_is_valid_and_slices_do_not_overlap() {
    let mut prog = two_stage_program();
    prog.enable_tracing();
    let report = prog.run().unwrap();

    let trace = report.to_chrome_trace();
    let json = Json::parse(&trace).expect("chrome trace parses as JSON");
    let events = json.as_arr().expect("trace is a JSON array");
    assert!(!events.is_empty());

    // One thread-name metadata event per stage thread (stages + source +
    // sink), each with a distinct tid.
    let mut tids = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).unwrap();
        match ph {
            "M" => {
                assert_eq!(e.get("name").and_then(Json::as_str), Some("thread_name"));
                tids.push(e.get("tid").and_then(Json::as_u64).unwrap());
            }
            "X" => {
                let name = e.get("name").and_then(Json::as_str).unwrap();
                assert!(
                    matches!(name, "busy" | "starved" | "backpressured" | "untraced"),
                    "unexpected slice {name:?}"
                );
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
                assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
                assert!(e.get("tid").and_then(Json::as_u64).is_some());
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(tids.len(), report.stages.len());
    let mut sorted = tids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), tids.len(), "tids must be distinct");

    // Per tid, slices tile the timeline without overlapping.
    for tid in tids {
        let mut slices: Vec<(f64, f64)> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("tid").and_then(Json::as_u64) == Some(tid)
            })
            .map(|e| {
                (
                    e.get("ts").and_then(Json::as_f64).unwrap(),
                    e.get("dur").and_then(Json::as_f64).unwrap(),
                )
            })
            .collect();
        slices.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in slices.windows(2) {
            let (ts0, dur0) = w[0];
            let (ts1, _) = w[1];
            assert!(
                ts0 + dur0 <= ts1 + 1e-9,
                "overlapping slices on tid {tid}: {w:?}"
            );
        }
    }
}

#[test]
fn observer_survives_stage_errors() {
    let obs = Arc::new(CountingObserver::new());
    let mut prog = Program::new("err");
    let boom = prog.add_stage(
        "boom",
        map_stage(|buf, _ctx| {
            if buf.round() == 3 {
                Err(fg_core::FgError::Stage {
                    stage: "boom".into(),
                    message: "synthetic".into(),
                })
            } else {
                Ok(())
            }
        }),
    );
    let cfg = PipelineCfg::new("p", 2, 8).rounds(Rounds::Count(100));
    prog.add_pipeline(cfg, &[boom]).unwrap();
    prog.set_observer(Arc::clone(&obs) as Arc<dyn fg_core::Observer>);
    assert!(prog.run().is_err());
    // Even on the error path every started stage reports an exit.
    assert_eq!(obs.stage_starts(), obs.stage_exits());
    assert_eq!(obs.stage_starts(), 1);
}

#[test]
fn accept_wait_histogram_records_plausible_latencies() {
    let registry = Arc::new(MetricsRegistry::new());
    let mut prog = Program::new("lat");
    let slow = prog.add_stage(
        "slow",
        map_stage(|_buf, _ctx| {
            std::thread::sleep(Duration::from_millis(1));
            Ok(())
        }),
    );
    let fast = prog.add_stage("fast", map_stage(|_buf, _ctx| Ok(())));
    let cfg = PipelineCfg::new("p", 2, 8).rounds(Rounds::Count(10));
    prog.add_pipeline(cfg, &[slow, fast]).unwrap();
    prog.set_metrics(Arc::clone(&registry));
    prog.set_observer(Arc::new(MetricsObserver::new(&registry)));
    prog.run().unwrap();

    // `fast` starves behind `slow`, so some accept waits near 1ms must be
    // visible in the histogram's upper range.
    let h = registry.histogram("core/accept_wait_ns").snapshot();
    assert_eq!(h.count, 20);
    assert!(
        h.max >= 100_000,
        "expected some waits >= 0.1ms, max was {}ns",
        h.max
    );
}
