//! Tests for span tracing and the Gantt renderer.

use std::time::Duration;

use fg_core::{map_stage, PipelineCfg, Program, Rounds, SpanKind};

fn traced_program() -> fg_core::Report {
    let mut prog = Program::new("traced");
    prog.enable_tracing();
    let slow = prog.add_stage(
        "slow",
        map_stage(|_, _| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(())
        }),
    );
    let fast = prog.add_stage("fast", map_stage(|_, _| Ok(())));
    prog.add_pipeline(
        PipelineCfg::new("p", 2, 16).rounds(Rounds::Count(20)),
        &[slow, fast],
    )
    .unwrap();
    prog.run().unwrap()
}

#[test]
fn tracing_records_spans() {
    let report = traced_program();
    let fast = report.stage("fast").unwrap();
    assert!(
        !fast.spans.is_empty(),
        "starved stage must record accept spans"
    );
    // Spans are well-formed and within the program's wall time.
    let wall_ns = report.wall.as_nanos() as u64;
    for span in &fast.spans {
        assert!(span.start_ns <= span.end_ns);
        assert!(span.end_ns <= wall_ns + 1_000_000, "span past wall time");
    }
    // The fast stage is starved: accept spans dominate.
    let accept_ns: u64 = fast
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Accept)
        .map(|s| s.end_ns - s.start_ns)
        .sum();
    assert!(
        accept_ns > wall_ns / 2,
        "fast stage should spend most time starved: {accept_ns} of {wall_ns}"
    );
}

#[test]
fn tracing_off_means_no_spans() {
    let mut prog = Program::new("untraced");
    let s = prog.add_stage("s", map_stage(|_, _| Ok(())));
    prog.add_pipeline(PipelineCfg::new("p", 2, 16).rounds(Rounds::Count(5)), &[s])
        .unwrap();
    let report = prog.run().unwrap();
    assert!(report.stage("s").unwrap().spans.is_empty());
}

#[test]
fn gantt_renders_all_stages() {
    let report = traced_program();
    let gantt = report.render_gantt(40);
    assert!(gantt.contains("slow"));
    assert!(gantt.contains("fast"));
    // The starved fast stage's traced row should be mostly dots.
    let fast_row = gantt
        .lines()
        .find(|l| l.starts_with("fast"))
        .expect("fast row");
    let dots = fast_row.matches('.').count();
    assert!(dots > 20, "fast row should be mostly starved: {fast_row}");
    // Sources/sinks have no spans and render as aggregate (~) bars.
    assert!(gantt.contains('~'), "untraced rows use aggregate bars");
}

#[test]
fn gantt_handles_empty_report() {
    let gantt = fg_core::Report::default().render_gantt(30);
    assert!(gantt.contains("gantt over"));
}
