//! Tests for ordered worker farms (`Program::workers`): downstream order
//! without a reorder stage, batched accept, SPSC specialization of plain
//! chain queues, and prompt teardown on error/stop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use fg_core::{map_stage, FgError, PipelineCfg, Program, Rounds, Stage, StageCtx};

#[test]
fn workers_emit_rounds_in_order_without_reorder_stage() {
    let seen = Arc::new(Mutex::new(Vec::<u64>::new()));
    let mut prog = Program::new("farm");
    // Data-dependent jitter so replicas finish rounds out of order; the
    // ordered emission gate must still present them in order downstream.
    let work = prog.workers("work", 4, |_i| {
        map_stage(|buf, _| {
            let jitter = (buf.round() * 7) % 5;
            std::thread::sleep(Duration::from_micros(200 * jitter));
            Ok(())
        })
    });
    let s2 = Arc::clone(&seen);
    let check = prog.add_stage(
        "check",
        map_stage(move |buf, _| {
            s2.lock().unwrap().push(buf.round());
            Ok(())
        }),
    );
    prog.add_pipeline(
        PipelineCfg::new("p", 8, 16).rounds(Rounds::Count(100)),
        &[work, check],
    )
    .unwrap();
    let report = prog.run().unwrap();
    assert_eq!(seen.lock().unwrap().clone(), (0..100).collect::<Vec<u64>>());
    // 4 worker threads + check + source + sink.
    assert_eq!(report.threads_spawned, 7);
    // Per-replica rows roll up under the base name.
    let (rolled, n) = report.stage_rollup("work").unwrap();
    assert_eq!(n, 4);
    assert_eq!(rolled.buffers_in, 100);
}

#[test]
fn farm_mid_pipeline_preserves_data_and_order() {
    let sum = Arc::new(AtomicU64::new(0));
    let next = Arc::new(AtomicU64::new(0));
    let mut prog = Program::new("mid");
    let fill = prog.add_stage(
        "fill",
        map_stage(|buf, _| {
            let r = buf.round();
            buf.copy_from(&r.to_le_bytes());
            Ok(())
        }),
    );
    let double = prog.workers("double", 3, |_| {
        map_stage(|buf, _| {
            let v = u64::from_le_bytes(buf.filled().try_into().unwrap()) * 2;
            buf.copy_from(&v.to_le_bytes());
            Ok(())
        })
    });
    let s2 = Arc::clone(&sum);
    let n2 = Arc::clone(&next);
    let take = prog.add_stage(
        "take",
        map_stage(move |buf, _| {
            assert_eq!(buf.round(), n2.fetch_add(1, Ordering::Relaxed));
            s2.fetch_add(
                u64::from_le_bytes(buf.filled().try_into().unwrap()),
                Ordering::Relaxed,
            );
            Ok(())
        }),
    );
    prog.add_pipeline(
        PipelineCfg::new("p", 6, 16).rounds(Rounds::Count(50)),
        &[fill, double, take],
    )
    .unwrap();
    prog.run().unwrap();
    assert_eq!(sum.load(Ordering::Relaxed), 2 * (49 * 50 / 2));
}

#[test]
fn single_worker_farm_degenerates_to_plain_stage() {
    let count = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&count);
    let mut prog = Program::new("one");
    let s = prog.workers("s", 1, move |_| {
        let c = Arc::clone(&c);
        map_stage(move |_, _| {
            c.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
    });
    prog.add_pipeline(PipelineCfg::new("p", 2, 8).rounds(Rounds::Count(17)), &[s])
        .unwrap();
    let report = prog.run().unwrap();
    assert_eq!(count.load(Ordering::Relaxed), 17);
    // No replica suffix: it runs as an ordinary stage.
    assert!(report.stage("s").is_some());
    assert!(report.stage_rollup("s").is_none());
}

#[test]
fn worker_error_cancels_farm_promptly() {
    // The replica holding round 5 fails *before* emitting, so replicas
    // holding rounds 6.. are parked in the emission gate; cancellation must
    // wake them or join() hangs.
    let t0 = Instant::now();
    let mut prog = Program::new("failfarm");
    let work = prog.workers("work", 4, |_| {
        map_stage(|buf, _| {
            if buf.round() == 5 {
                return Err(FgError::stage("work", "replica failure"));
            }
            std::thread::sleep(Duration::from_micros(300));
            Ok(())
        })
    });
    prog.add_pipeline(
        PipelineCfg::new("p", 6, 16).rounds(Rounds::Count(10_000)),
        &[work],
    )
    .unwrap();
    let err = prog.run().unwrap_err();
    assert!(matches!(err, FgError::Stage { .. }), "got {err:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "cancellation took {:?}",
        t0.elapsed()
    );
}

#[test]
fn stop_tears_down_farm_and_spsc_spinners_promptly() {
    // A downstream stage stops the pipeline mid-stream: the source emits
    // the caboose, the farm's poison-pill handoff retires every worker, and
    // SPSC pushers/poppers spinning on queues observe the close.
    let t0 = Instant::now();
    struct StopAt(u64);
    impl Stage for StopAt {
        fn run(&mut self, ctx: &mut StageCtx) -> fg_core::Result<()> {
            while let Some(buf) = ctx.accept()? {
                let stop = buf.round() >= self.0;
                let p = buf.pipeline();
                ctx.convey(buf)?;
                if stop {
                    ctx.stop(p)?;
                    break;
                }
            }
            Ok(())
        }
    }
    let mut prog = Program::new("stopfarm");
    let work = prog.workers("work", 3, |_| map_stage(|_, _| Ok(())));
    let gate = prog.add_stage("gate", Box::new(StopAt(20)));
    prog.add_pipeline(
        PipelineCfg::new("p", 4, 16).rounds(Rounds::UntilStopped),
        &[work, gate],
    )
    .unwrap();
    prog.run().unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "stop took {:?}",
        t0.elapsed()
    );
}

#[test]
fn accept_many_sees_every_buffer_in_order() {
    // A batched consumer downstream of a farm: pop_many hands it runs of
    // buffers without re-locking per item, still in round order.
    let seen = Arc::new(Mutex::new(Vec::<u64>::new()));
    let batches = Arc::new(AtomicU64::new(0));
    struct Batched {
        seen: Arc<Mutex<Vec<u64>>>,
        batches: Arc<AtomicU64>,
    }
    impl Stage for Batched {
        fn run(&mut self, ctx: &mut StageCtx) -> fg_core::Result<()> {
            let mut out = Vec::new();
            loop {
                let n = ctx.accept_many(8, &mut out)?;
                if n == 0 {
                    return Ok(());
                }
                self.batches.fetch_add(1, Ordering::Relaxed);
                for buf in out.drain(..) {
                    self.seen.lock().unwrap().push(buf.round());
                    ctx.convey(buf)?;
                }
            }
        }
    }
    let mut prog = Program::new("batch");
    let work = prog.workers("work", 2, |_| map_stage(|_, _| Ok(())));
    let sink = prog.add_stage(
        "collect",
        Box::new(Batched {
            seen: Arc::clone(&seen),
            batches: Arc::clone(&batches),
        }),
    );
    prog.add_pipeline(
        PipelineCfg::new("p", 6, 16).rounds(Rounds::Count(120)),
        &[work, sink],
    )
    .unwrap();
    prog.run().unwrap();
    assert_eq!(seen.lock().unwrap().clone(), (0..120).collect::<Vec<u64>>());
    // Batching actually batched: far fewer accepts than buffers.
    assert!(batches.load(Ordering::Relaxed) < 120);
}

#[test]
fn spsc_detection_specializes_plain_chains_only() {
    // One program exercising all three consumer kinds: a plain chain (SPSC
    // eligible), a farm (its input is shared by replicas re-pushing the
    // caboose), and a virtual stage shared by two pipelines (many
    // producers).  Only the plain chain's queues may specialize.
    let mut prog = Program::new("flavors");
    let a = prog.add_stage("a", map_stage(|_, _| Ok(())));
    let farm = prog.workers("farm", 2, |_| map_stage(|_, _| Ok(())));
    let b = prog.add_stage("b", map_stage(|_, _| Ok(())));
    prog.add_pipeline(
        PipelineCfg::new("p", 3, 16).rounds(Rounds::Count(10)),
        &[a, farm, b],
    )
    .unwrap();
    let v = prog.add_virtual_stage("v", map_stage(|_, _| Ok(())));
    prog.add_pipeline(PipelineCfg::new("q", 2, 16).rounds(Rounds::Count(5)), &[v])
        .unwrap();
    prog.add_pipeline(PipelineCfg::new("r", 2, 16).rounds(Rounds::Count(5)), &[v])
        .unwrap();
    let report = prog.run().unwrap();
    let flavor = |name: &str| {
        let q = report
            .queues
            .iter()
            .find(|q| q.name == name)
            .unwrap_or_else(|| panic!("queue {name} missing"));
        assert_eq!(q.spsc, q.flavor == "spsc", "spsc bool disagrees with label");
        q.flavor.clone()
    };
    // source -> a: single producer (source thread), single consumer.
    assert_eq!(flavor("p[0]"), "spsc");
    // a -> farm: the farm's replicas also push (caboose handoff): MPMC,
    // on the lock-free ring.
    assert_eq!(flavor("p[1]"), "lockfree");
    // farm -> b: two replica producers: MPMC.
    assert_eq!(flavor("p[2]"), "lockfree");
    // Shared virtual input: fed by two pipelines' sources: MPMC.
    assert_eq!(flavor("in/v"), "lockfree");
    // Recycle and sink queues collect from many threads: MPMC, lock-free.
    assert!(report
        .queues
        .iter()
        .filter(|q| q.name.starts_with("recycle/") || q.name.starts_with("sink/"))
        .all(|q| !q.spsc && q.flavor == "lockfree"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Ordered emission holds for any per-replica delay profile: however
    /// the scheduler and sleeps interleave the workers, downstream sees
    /// rounds 0..n in order.
    #[test]
    fn farm_order_holds_under_random_replica_delays(
        delays in proptest::collection::vec(0u64..400, 4),
        rounds in 1u64..40,
    ) {
        let seen = Arc::new(Mutex::new(Vec::<u64>::new()));
        let mut prog = Program::new("prop-farm");
        let d = delays.clone();
        let work = prog.workers("work", delays.len(), move |i| {
            let us = d[i];
            map_stage(move |_, _| {
                if us > 0 {
                    std::thread::sleep(Duration::from_micros(us));
                }
                Ok(())
            })
        });
        let s2 = Arc::clone(&seen);
        let check = prog.add_stage(
            "check",
            map_stage(move |buf, _| {
                s2.lock().unwrap().push(buf.round());
                Ok(())
            }),
        );
        prog.add_pipeline(
            PipelineCfg::new("p", 6, 16).rounds(Rounds::Count(rounds)),
            &[work, check],
        )
        .unwrap();
        prog.run().unwrap();
        let expect: Vec<u64> = (0..rounds).collect();
        prop_assert_eq!(seen.lock().unwrap().clone(), expect);
    }
}
