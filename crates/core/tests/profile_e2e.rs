//! End-to-end resource profiler test: a real program with busy stages,
//! sampled live by a fast-cadence profiler; the registry must end up with
//! per-thread CPU rows for the stage threads.

use std::sync::Arc;
use std::time::Duration;

use fg_core::{map_stage, MetricsRegistry, PipelineCfg, ProfilerCfg, Program, Rounds};

#[cfg(target_os = "linux")]
#[test]
fn profiler_sees_stage_threads_during_a_run() {
    let registry = Arc::new(MetricsRegistry::new());
    let ledger = Arc::new(fg_core::MemoryLedger::new());
    let profiler = fg_core::ResourceProfiler::start_with(
        Arc::clone(&registry),
        ProfilerCfg {
            interval: Duration::from_millis(5),
        },
        Some(Arc::clone(&ledger)),
    );

    let mut prog = Program::new("profile-e2e");
    prog.set_memory_ledger(Arc::clone(&ledger));
    let spin = prog.add_stage(
        "spin",
        map_stage(|_buf, _ctx| {
            // Busy + slow enough that several profiler ticks land mid-run.
            std::thread::sleep(Duration::from_millis(10));
            Ok(())
        }),
    );
    prog.add_pipeline(
        PipelineCfg::new("p", 2, 1024).rounds(Rounds::Count(10)),
        &[spin],
    )
    .unwrap();
    prog.run().unwrap();

    profiler.stop();
    let snap = registry.snapshot();
    let thread_gauges: Vec<&str> = snap
        .gauges
        .iter()
        .map(|(n, _)| n.as_str())
        .filter(|n| n.starts_with("resource/thread/"))
        .collect();
    assert!(
        thread_gauges.iter().any(|n| n.contains("profile-e2e/spin")),
        "no stage-thread rows; thread gauges: {thread_gauges:?}"
    );
    let resources = fg_core::ResourceReport::from_metrics(&snap).expect("resource gauges present");
    assert!(resources.rss_bytes > 0);
    assert!(resources
        .threads
        .iter()
        .any(|t| t.name.contains("profile-e2e/spin")));
    // The ledger saw the pool's buffers.
    assert!(resources.ledger.expect("ledger rows").total_buffers > 0);
}
