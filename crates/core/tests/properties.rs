//! Property-based tests on FG runtime invariants: every round reaches
//! every stage exactly once and in order, regardless of buffer counts,
//! stage counts, or round counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use fg_core::{map_stage, PipelineCfg, Program, Rounds};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A linear pipeline delivers all rounds, in order, through any number
    /// of stages, for any buffer pool size.
    #[test]
    fn linear_pipeline_delivers_all_rounds_in_order(
        stages in 1usize..5,
        buffers in 1usize..5,
        rounds in 0u64..60,
    ) {
        let seen = Arc::new(Mutex::new(Vec::<u64>::new()));
        let mut prog = Program::new("prop");
        let mut ids = Vec::new();
        for i in 0..stages {
            if i + 1 == stages {
                let seen2 = Arc::clone(&seen);
                ids.push(prog.add_stage(
                    format!("s{i}"),
                    map_stage(move |buf, _| {
                        seen2.lock().unwrap().push(buf.round());
                        Ok(())
                    }),
                ));
            } else {
                ids.push(prog.add_stage(format!("s{i}"), map_stage(|_, _| Ok(()))));
            }
        }
        prog.add_pipeline(
            PipelineCfg::new("p", buffers, 16).rounds(Rounds::Count(rounds)),
            &ids,
        ).unwrap();
        prog.run().unwrap();
        let got = seen.lock().unwrap().clone();
        let expect: Vec<u64> = (0..rounds).collect();
        prop_assert_eq!(got, expect);
    }

    /// Multiple disjoint pipelines each deliver their own round counts.
    #[test]
    fn disjoint_pipelines_deliver_independently(
        counts in proptest::collection::vec(0u64..40, 1..4),
    ) {
        let mut prog = Program::new("prop");
        let counters: Vec<Arc<AtomicU64>> =
            counts.iter().map(|_| Arc::new(AtomicU64::new(0))).collect();
        for (i, (&n, counter)) in counts.iter().zip(&counters).enumerate() {
            let c2 = Arc::clone(counter);
            let s = prog.add_stage(
                format!("s{i}"),
                map_stage(move |_, _| {
                    c2.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }),
            );
            prog.add_pipeline(
                PipelineCfg::new(format!("p{i}"), 2, 8).rounds(Rounds::Count(n)),
                &[s],
            ).unwrap();
        }
        prog.run().unwrap();
        for (n, counter) in counts.iter().zip(&counters) {
            prop_assert_eq!(counter.load(Ordering::Relaxed), *n);
        }
    }

    /// A common stage accepting from two pipelines sees exactly the union
    /// of both round sets.
    #[test]
    fn common_stage_sees_union(a in 0u64..30, b in 0u64..30) {
        use fg_core::{Stage, StageCtx};
        struct Common(Arc<AtomicU64>);
        impl Stage for Common {
            fn run(&mut self, ctx: &mut StageCtx) -> fg_core::Result<()> {
                let pids: Vec<_> = ctx.pipelines().collect();
                for &p in &pids {
                    while let Some(buf) = ctx.accept_from(p)? {
                        self.0.fetch_add(1, Ordering::Relaxed);
                        ctx.convey(buf)?;
                    }
                }
                Ok(())
            }
        }
        let count = Arc::new(AtomicU64::new(0));
        let mut prog = Program::new("prop");
        let common = prog.add_stage("common", Box::new(Common(Arc::clone(&count))));
        prog.add_pipeline(PipelineCfg::new("a", 2, 8).rounds(Rounds::Count(a)), &[common])
            .unwrap();
        prog.add_pipeline(PipelineCfg::new("b", 2, 8).rounds(Rounds::Count(b)), &[common])
            .unwrap();
        prog.run().unwrap();
        prop_assert_eq!(count.load(Ordering::Relaxed), a + b);
    }

    /// Virtual stages see every member pipeline's rounds exactly once and
    /// the program spawns a constant number of threads regardless of k.
    #[test]
    fn virtual_stage_sees_all_lanes(counts in proptest::collection::vec(1u64..20, 1..6)) {
        let total: u64 = counts.iter().sum();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let mut prog = Program::new("prop");
        let v = prog.add_virtual_stage(
            "v",
            map_stage(move |_, _| {
                seen2.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }),
        );
        for (i, &n) in counts.iter().enumerate() {
            prog.add_pipeline(
                PipelineCfg::new(format!("p{i}"), 2, 8).rounds(Rounds::Count(n)),
                &[v],
            ).unwrap();
        }
        let report = prog.run().unwrap();
        prop_assert_eq!(seen.load(Ordering::Relaxed), total);
        // One virtual stage thread + one shared source + one shared sink.
        prop_assert_eq!(report.threads_spawned, 3);
    }
}
