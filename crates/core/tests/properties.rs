//! Property-based tests on FG runtime invariants: every round reaches
//! every stage exactly once and in order, regardless of buffer counts,
//! stage counts, or round counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use fg_core::{
    map_stage, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, PipelineCfg, Program, Rounds,
};

/// Build a snapshot by replaying `(metric index, value)` ops against a
/// fresh registry, so every generated snapshot is internally consistent.
fn snapshot_from(
    counters: &[(u8, u64)],
    gauges: &[(u8, u64)],
    samples: &[(u8, u64)],
) -> MetricsSnapshot {
    let reg = MetricsRegistry::new();
    for (i, v) in counters {
        reg.counter(&format!("c{}", i % 4)).add(*v);
    }
    for (i, v) in gauges {
        reg.gauge(&format!("g{}", i % 4)).set(*v);
    }
    for (i, v) in samples {
        reg.histogram(&format!("h{}", i % 4)).record(*v);
    }
    reg.snapshot()
}

fn ops() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((any::<u8>(), any::<u64>()), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A linear pipeline delivers all rounds, in order, through any number
    /// of stages, for any buffer pool size.
    #[test]
    fn linear_pipeline_delivers_all_rounds_in_order(
        stages in 1usize..5,
        buffers in 1usize..5,
        rounds in 0u64..60,
    ) {
        let seen = Arc::new(Mutex::new(Vec::<u64>::new()));
        let mut prog = Program::new("prop");
        let mut ids = Vec::new();
        for i in 0..stages {
            if i + 1 == stages {
                let seen2 = Arc::clone(&seen);
                ids.push(prog.add_stage(
                    format!("s{i}"),
                    map_stage(move |buf, _| {
                        seen2.lock().unwrap().push(buf.round());
                        Ok(())
                    }),
                ));
            } else {
                ids.push(prog.add_stage(format!("s{i}"), map_stage(|_, _| Ok(()))));
            }
        }
        prog.add_pipeline(
            PipelineCfg::new("p", buffers, 16).rounds(Rounds::Count(rounds)),
            &ids,
        ).unwrap();
        prog.run().unwrap();
        let got = seen.lock().unwrap().clone();
        let expect: Vec<u64> = (0..rounds).collect();
        prop_assert_eq!(got, expect);
    }

    /// Multiple disjoint pipelines each deliver their own round counts.
    #[test]
    fn disjoint_pipelines_deliver_independently(
        counts in proptest::collection::vec(0u64..40, 1..4),
    ) {
        let mut prog = Program::new("prop");
        let counters: Vec<Arc<AtomicU64>> =
            counts.iter().map(|_| Arc::new(AtomicU64::new(0))).collect();
        for (i, (&n, counter)) in counts.iter().zip(&counters).enumerate() {
            let c2 = Arc::clone(counter);
            let s = prog.add_stage(
                format!("s{i}"),
                map_stage(move |_, _| {
                    c2.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }),
            );
            prog.add_pipeline(
                PipelineCfg::new(format!("p{i}"), 2, 8).rounds(Rounds::Count(n)),
                &[s],
            ).unwrap();
        }
        prog.run().unwrap();
        for (n, counter) in counts.iter().zip(&counters) {
            prop_assert_eq!(counter.load(Ordering::Relaxed), *n);
        }
    }

    /// A common stage accepting from two pipelines sees exactly the union
    /// of both round sets.
    #[test]
    fn common_stage_sees_union(a in 0u64..30, b in 0u64..30) {
        use fg_core::{Stage, StageCtx};
        struct Common(Arc<AtomicU64>);
        impl Stage for Common {
            fn run(&mut self, ctx: &mut StageCtx) -> fg_core::Result<()> {
                let pids: Vec<_> = ctx.pipelines().collect();
                for &p in &pids {
                    while let Some(buf) = ctx.accept_from(p)? {
                        self.0.fetch_add(1, Ordering::Relaxed);
                        ctx.convey(buf)?;
                    }
                }
                Ok(())
            }
        }
        let count = Arc::new(AtomicU64::new(0));
        let mut prog = Program::new("prop");
        let common = prog.add_stage("common", Box::new(Common(Arc::clone(&count))));
        prog.add_pipeline(PipelineCfg::new("a", 2, 8).rounds(Rounds::Count(a)), &[common])
            .unwrap();
        prog.add_pipeline(PipelineCfg::new("b", 2, 8).rounds(Rounds::Count(b)), &[common])
            .unwrap();
        prog.run().unwrap();
        prop_assert_eq!(count.load(Ordering::Relaxed), a + b);
    }

    /// Virtual stages see every member pipeline's rounds exactly once and
    /// the program spawns a constant number of threads regardless of k.
    #[test]
    fn virtual_stage_sees_all_lanes(counts in proptest::collection::vec(1u64..20, 1..6)) {
        let total: u64 = counts.iter().sum();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let mut prog = Program::new("prop");
        let v = prog.add_virtual_stage(
            "v",
            map_stage(move |_, _| {
                seen2.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }),
        );
        for (i, &n) in counts.iter().enumerate() {
            prog.add_pipeline(
                PipelineCfg::new(format!("p{i}"), 2, 8).rounds(Rounds::Count(n)),
                &[v],
            ).unwrap();
        }
        let report = prog.run().unwrap();
        prop_assert_eq!(seen.load(Ordering::Relaxed), total);
        // One virtual stage thread + one shared source + one shared sink.
        prop_assert_eq!(report.threads_spawned, 3);
    }

    /// Snapshot merge is associative: replace-semantics means only the
    /// last writer of each name survives, regardless of grouping.
    #[test]
    fn snapshot_merge_is_associative(
        a in (ops(), ops(), ops()),
        b in (ops(), ops(), ops()),
        c in (ops(), ops(), ops()),
    ) {
        let a = snapshot_from(&a.0, &a.1, &a.2);
        let b = snapshot_from(&b.0, &b.1, &b.2);
        let c = snapshot_from(&c.0, &c.1, &c.2);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Percentiles are monotone in `p`, bracketed by [min, max], and the
    /// bucket upper bound overshoots a sample by at most 2x.
    #[test]
    fn percentile_is_monotone_and_bounded(samples in proptest::collection::vec(1u64..1_000_000, 1..40)) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        let mut prev = 0;
        for p in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let v = snap.percentile(p);
            prop_assert!(v >= prev, "percentile not monotone at p={p}");
            prop_assert!(v >= lo / 2 && v <= hi, "p{p}={v} outside [{lo}/2, {hi}]");
            prev = v;
        }
    }
}

#[test]
fn empty_histogram_percentiles_are_zero() {
    let empty = HistogramSnapshot::default();
    for p in [0.0, 0.5, 1.0] {
        assert_eq!(empty.percentile(p), 0);
    }
    assert_eq!(empty.mean(), 0.0);
}

#[test]
fn percentile_p_is_clamped_to_unit_interval() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("h");
    for v in [1u64, 2, 3, 1000] {
        h.record(v);
    }
    let snap = h.snapshot();
    // Out-of-range p clamps rather than panicking or indexing out of range.
    assert_eq!(snap.percentile(-1.0), snap.percentile(0.0));
    assert_eq!(snap.percentile(2.0), snap.percentile(1.0));
    assert_eq!(snap.percentile(1.0), 1000);
}

#[test]
fn merge_replaces_gauge_peaks_rather_than_maxing() {
    // Documented replace semantics: a merged-in gauge's peak wins even
    // when lower, because each snapshot is a self-consistent point in time.
    let a = MetricsRegistry::new();
    a.gauge("g").set(100);
    let b = MetricsRegistry::new();
    b.gauge("g").set(5);
    let mut merged = a.snapshot();
    merged.merge(&b.snapshot());
    let g = merged.gauge("g").unwrap();
    assert_eq!(g.value, 5);
    assert_eq!(g.peak, 5);
}

#[test]
fn merge_with_empty_is_identity_and_keeps_sorted_order() {
    let reg = MetricsRegistry::new();
    reg.counter("z").inc();
    reg.counter("a").inc();
    reg.gauge("m").set(7);
    let snap = reg.snapshot();
    let mut merged = snap.clone();
    merged.merge(&MetricsSnapshot::default());
    assert_eq!(merged, snap);
    let mut from_empty = MetricsSnapshot::default();
    from_empty.merge(&snap);
    assert_eq!(from_empty, snap);
    let names: Vec<&str> = merged.counters.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["a", "z"]);
}
