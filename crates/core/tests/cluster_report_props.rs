//! Property tests for [`ClusterReport`] aggregation: merging per-rank
//! reports must not depend on how the coordinator groups or orders the
//! arriving snapshots.

use std::collections::HashSet;
use std::time::Duration;

use fg_core::{ClusterReport, MetricsRegistry, RankReport};
use proptest::prelude::*;

/// Build a rank report with some rank-qualified comm metrics.
fn rank_report(rank: usize, wall_ms: u64, bytes: u64) -> RankReport {
    let reg = MetricsRegistry::new();
    reg.counter(&format!("comm/bytes/{rank}->{}", rank + 1))
        .add(bytes);
    reg.counter(&format!("comm/msgs/{rank}->{}", rank + 1))
        .add(1);
    reg.histogram(&format!("comm/barrier_ns/r{rank}"))
        .record(wall_ms * 10);
    RankReport {
        rank,
        wall: Duration::from_millis(wall_ms),
        reports: Vec::new(),
        metrics: reg.snapshot(),
    }
}

/// A set of rank reports with distinct ranks, as `(rank, wall_ms, bytes)`.
fn disjoint_ranks() -> impl Strategy<Value = Vec<(usize, u64, u64)>> {
    proptest::collection::vec((0usize..32, 1u64..1000, 0u64..1 << 20), 1..12).prop_map(|specs| {
        let mut seen = HashSet::new();
        specs
            .into_iter()
            .filter(|&(rank, _, _)| seen.insert(rank))
            .collect()
    })
}

fn folded(parts: &[Vec<RankReport>]) -> ClusterReport {
    let mut acc = ClusterReport::default();
    for part in parts {
        let mut cr = ClusterReport::default();
        for r in part {
            cr.push(r.clone());
        }
        acc.merge(&cr);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging is associative: grouping the arriving per-node reports
    /// differently yields the same cluster report.
    #[test]
    fn merge_is_associative(
        specs in disjoint_ranks(),
        split in (0usize..100, 0usize..100),
    ) {
        let reports: Vec<RankReport> =
            specs.iter().map(|&(r, w, b)| rank_report(r, w, b)).collect();
        let n = reports.len();
        let (mut i, mut j) = (split.0 % (n + 1), split.1 % (n + 1));
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let (a, b, c) = (&reports[..i], &reports[i..j], &reports[j..]);

        // ((A ∪ B) ∪ C) vs (A ∪ (B ∪ C)).
        let left = folded(&[a.to_vec(), b.to_vec(), c.to_vec()]);
        let mut bc = ClusterReport::default();
        for r in b.iter().chain(c) {
            bc.push(r.clone());
        }
        let mut right = ClusterReport::default();
        for r in a {
            right.push(r.clone());
        }
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// For disjoint rank sets (the normal case: every node reports its own
    /// rank once), arrival order does not matter.
    #[test]
    fn merge_is_rank_permutation_invariant(
        specs in disjoint_ranks(),
        seed in 0u64..u64::MAX,
    ) {
        let reports: Vec<RankReport> =
            specs.iter().map(|&(r, w, b)| rank_report(r, w, b)).collect();

        // A cheap deterministic shuffle driven by the seed.
        let mut shuffled = reports.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state % (i as u64 + 1)) as usize);
        }

        let ordered = folded(&[reports]);
        let permuted = folded(&[shuffled]);
        prop_assert_eq!(&ordered, &permuted);

        // And the result is sorted by rank with no duplicates.
        let ranks: Vec<usize> = ordered.ranks.iter().map(|r| r.rank).collect();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&ranks, &sorted);
        prop_assert_eq!(ranks.len(), ranks.iter().collect::<HashSet<_>>().len());
    }

    /// JSON round-trip preserves the report exactly.
    #[test]
    fn cluster_report_json_round_trips(specs in disjoint_ranks()) {
        let mut cr = ClusterReport::default();
        for &(r, w, b) in &specs {
            cr.push(rank_report(r, w, b));
        }
        let parsed = ClusterReport::from_json(&cr.to_json()).unwrap();
        prop_assert_eq!(parsed, cr);
    }
}
