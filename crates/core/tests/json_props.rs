//! Property tests for the JSON string parser's `\u` escape handling,
//! focused on the UTF-16 surrogate-pair path: astral-plane characters
//! round-trip both as literal UTF-8 and as `\uXXXX\uXXXX` escape pairs,
//! and lone or mismatched surrogate halves are rejected rather than
//! combined into garbage scalars.

use proptest::prelude::*;

use fg_core::Json;

/// Astral-plane scalar values (U+10000..=U+10FFFF) — everything that
/// needs a surrogate pair in UTF-16 and therefore exercises the two-escape
/// path in the parser.
fn astral() -> impl Strategy<Value = char> {
    (0x1_0000u32..0x11_0000).prop_map(|c| char::from_u32(c).expect("no surrogates above BMP"))
}

/// Any Unicode scalar value, biased half toward the astral planes.
fn scalar() -> impl Strategy<Value = char> {
    prop_oneof![
        (0u32..0xD800).prop_map(|c| char::from_u32(c).expect("below surrogate range")),
        (0xE000u32..0x1_0000).prop_map(|c| char::from_u32(c).expect("above surrogate range")),
        astral().boxed(),
    ]
}

/// Render `s` as a JSON string escaping *every* character as UTF-16
/// `\uXXXX` units — astral characters become surrogate pairs.
fn escape_utf16(s: &str) -> String {
    let mut out = String::from("\"");
    for unit in s.encode_utf16() {
        out.push_str(&format!("\\u{unit:04X}"));
    }
    out.push('"');
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serializing an astral-plane string and parsing it back is the
    /// identity (the writer emits literal UTF-8; the reader must keep it).
    #[test]
    fn astral_strings_round_trip_through_render(chars in proptest::collection::vec(astral(), 1..8)) {
        let s: String = chars.into_iter().collect();
        let rendered = Json::Str(s.clone()).to_string();
        let parsed = Json::parse(&rendered);
        prop_assert!(parsed.is_ok(), "render {rendered:?} failed to parse");
        prop_assert_eq!(parsed.unwrap().as_str(), Some(s.as_str()));
    }

    /// The fully `\uXXXX`-escaped spelling of any string parses to the
    /// same string — the escape reader and the UTF-16 encoder agree, pair
    /// by pair.
    #[test]
    fn utf16_escape_spelling_is_symmetric(chars in proptest::collection::vec(scalar(), 1..8)) {
        let s: String = chars.into_iter().collect();
        let escaped = escape_utf16(&s);
        let parsed = Json::parse(&escaped);
        prop_assert!(parsed.is_ok(), "escaped {escaped:?} failed to parse");
        prop_assert_eq!(parsed.unwrap().as_str(), Some(s.as_str()));
    }

    /// A high surrogate that is not followed by a low-half escape is an
    /// error, whatever follows it — never a panic, never a silent
    /// mis-combined scalar.
    #[test]
    fn high_surrogate_without_low_half_is_rejected(
        hi in 0xD800u32..0xDC00,
        bmp in 0u32..0xD800,
    ) {
        // Followed by a BMP escape that is not a low half.
        let doc = format!("\"\\u{hi:04X}\\u{bmp:04X}\"");
        prop_assert!(Json::parse(&doc).is_err(), "accepted {doc}");
        // Followed by a second *high* half.
        let doc = format!("\"\\u{hi:04X}\\u{hi:04X}\"");
        prop_assert!(Json::parse(&doc).is_err(), "accepted {doc}");
        // Followed by a plain character.
        let doc = format!("\"\\u{hi:04X}x\"");
        prop_assert!(Json::parse(&doc).is_err(), "accepted {doc}");
        // Followed by the closing quote (end of string).
        let doc = format!("\"\\u{hi:04X}\"");
        prop_assert!(Json::parse(&doc).is_err(), "accepted {doc}");
    }

    /// A low surrogate with no preceding high half is an error.
    #[test]
    fn lone_low_surrogate_is_rejected(lo in 0xDC00u32..0xE000) {
        let doc = format!("\"\\u{lo:04X}\"");
        prop_assert!(Json::parse(&doc).is_err(), "accepted {doc}");
    }
}
