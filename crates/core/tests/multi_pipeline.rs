//! Integration tests for FG's extensions (§IV): multiple disjoint
//! pipelines, multiple intersecting pipelines (common stage), and virtual
//! stages / virtual pipelines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fg_core::{map_stage, Buffer, FgError, PipelineCfg, Program, Rounds, StageCtx};

/// Two disjoint pipelines with different buffer counts, sizes, and rates
/// run in one program and both complete (Figure 4's shape, minus the
/// network in between — fg-cluster supplies that).
#[test]
fn disjoint_pipelines_progress_independently() {
    let fast_done = Arc::new(AtomicU64::new(0));
    let slow_done = Arc::new(AtomicU64::new(0));

    let mut prog = Program::new("disjoint");
    let f2 = Arc::clone(&fast_done);
    let fast = prog.add_stage(
        "fast",
        map_stage(move |_, _| {
            f2.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }),
    );
    let s2 = Arc::clone(&slow_done);
    let slow = prog.add_stage(
        "slow",
        map_stage(move |_, _| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            s2.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }),
    );
    prog.add_pipeline(PipelineCfg::new("send", 4, 256).count(200), &[fast])
        .unwrap();
    prog.add_pipeline(PipelineCfg::new("recv", 2, 64).count(50), &[slow])
        .unwrap();
    let report = prog.run().unwrap();

    assert_eq!(fast_done.load(Ordering::Relaxed), 200);
    assert_eq!(slow_done.load(Ordering::Relaxed), 50);
    // 2 stages + 2 sources + 2 sinks
    assert_eq!(report.threads_spawned, 6);
}

/// k sorted runs of u64s -> one sorted stream, via intersecting pipelines.
/// Exercises both virtual and non-virtual vertical reads.
fn merge_with_fg(runs: Vec<Vec<u64>>, virtual_reads: bool) -> (Vec<u64>, fg_core::Report) {
    const VAL: usize = 8;
    let k = runs.len();
    let vertical_buf_bytes = 4 * VAL; // tiny buffers: 4 values each
    let horizontal_buf_bytes = 16 * VAL;

    let mut prog = Program::new("merge");

    // Shared state the merge stage needs: the pipeline ids, known only
    // after pipelines are added.  Use a OnceLock-style cell.
    #[derive(Default)]
    struct Wiring {
        verticals: Vec<fg_core::PipelineId>,
        horizontal: Option<fg_core::PipelineId>,
    }
    let wiring = Arc::new(parking_lot::Mutex::new(Wiring::default()));

    // Vertical read stages.
    let mut vertical_stage_ids = Vec::new();
    if virtual_reads {
        // One virtual stage serving all k verticals; per-lane cursors.
        let runs2 = runs.clone();
        let wiring2 = Arc::clone(&wiring);
        let mut cursors = vec![0usize; k];
        vertical_stage_ids.push(prog.add_virtual_stage(
            "read",
            map_stage(move |buf: &mut Buffer, _ctx: &mut StageCtx| {
                let lane = wiring2
                    .lock()
                    .verticals
                    .iter()
                    .position(|&p| p == buf.pipeline())
                    .expect("buffer from unknown vertical");
                let run = &runs2[lane];
                let cur = cursors[lane];
                let take = (buf.capacity() / VAL).min(run.len() - cur);
                for (i, v) in run[cur..cur + take].iter().enumerate() {
                    buf.space_mut()[i * VAL..(i + 1) * VAL].copy_from_slice(&v.to_le_bytes());
                }
                buf.set_filled(take * VAL);
                cursors[lane] = cur + take;
                Ok(())
            }),
        ));
    } else {
        for (lane, lane_run) in runs.iter().enumerate().take(k) {
            let run = lane_run.clone();
            let mut cursor = 0usize;
            vertical_stage_ids.push(prog.add_stage(
                format!("read{lane}"),
                map_stage(move |buf: &mut Buffer, _ctx: &mut StageCtx| {
                    let take = (buf.capacity() / VAL).min(run.len() - cursor);
                    for (i, v) in run[cursor..cursor + take].iter().enumerate() {
                        buf.space_mut()[i * VAL..(i + 1) * VAL].copy_from_slice(&v.to_le_bytes());
                    }
                    buf.set_filled(take * VAL);
                    cursor += take;
                    Ok(())
                }),
            ));
        }
    }

    // The common merge stage (custom Stage impl via closure).
    let wiring3 = Arc::clone(&wiring);
    let merge = prog.add_stage(
        "merge",
        Box::new(move |ctx: &mut StageCtx| {
            let (verticals, horizontal) = {
                let w = wiring3.lock();
                (w.verticals.clone(), w.horizontal.unwrap())
            };
            // Accept the next non-empty buffer of a vertical (an empty
            // buffer can occur for an empty run) or None at end of stream.
            fn next_head(
                ctx: &mut StageCtx,
                v: fg_core::PipelineId,
            ) -> fg_core::Result<Option<(Buffer, usize)>> {
                loop {
                    match ctx.accept_from(v)? {
                        None => return Ok(None),
                        Some(b) if b.is_empty() => ctx.discard(b)?,
                        Some(b) => return Ok(Some((b, 0))),
                    }
                }
            }
            let mut heads: Vec<Option<(Buffer, usize)>> = Vec::new();
            for &v in &verticals {
                heads.push(next_head(ctx, v)?);
            }
            let mut out = ctx
                .accept_from(horizontal)?
                .expect("horizontal must supply empty buffers");
            let mut out_len = 0usize;
            loop {
                let mut best: Option<(usize, u64)> = None;
                for (i, h) in heads.iter().enumerate() {
                    if let Some((buf, off)) = h {
                        let v =
                            u64::from_le_bytes(buf.filled()[*off..*off + VAL].try_into().unwrap());
                        if best.map(|(_, bv)| v < bv).unwrap_or(true) {
                            best = Some((i, v));
                        }
                    }
                }
                let (i, v) = match best {
                    Some(b) => b,
                    None => break,
                };
                out.space_mut()[out_len..out_len + VAL].copy_from_slice(&v.to_le_bytes());
                out_len += VAL;
                if out_len == out.capacity() {
                    out.set_filled(out_len);
                    ctx.convey(out)?;
                    out = ctx
                        .accept_from(horizontal)?
                        .expect("horizontal source stopped early");
                    out_len = 0;
                }
                let (buf, off) = heads[i].take().unwrap();
                let noff = off + VAL;
                if noff < buf.len() {
                    heads[i] = Some((buf, noff));
                } else {
                    ctx.discard(buf)?;
                    heads[i] = next_head(ctx, verticals[i])?;
                }
            }
            if out_len > 0 {
                out.set_filled(out_len);
                ctx.convey(out)?;
            } else {
                ctx.discard(out)?;
            }
            ctx.stop(horizontal)?;
            Ok(())
        }),
    );

    // Collector at the end of the horizontal pipeline.
    let collected = Arc::new(parking_lot::Mutex::new(Vec::<u64>::new()));
    let c2 = Arc::clone(&collected);
    let collect = prog.add_stage(
        "collect",
        map_stage(move |buf, _| {
            let mut out = c2.lock();
            for chunk in buf.filled().chunks_exact(VAL) {
                out.push(u64::from_le_bytes(chunk.try_into().unwrap()));
            }
            Ok(())
        }),
    );

    // Wire pipelines.
    {
        let mut w = wiring.lock();
        for lane in 0..k {
            let blocks = runs[lane].len().div_ceil(vertical_buf_bytes / VAL).max(1);
            let stage_id = if virtual_reads {
                vertical_stage_ids[0]
            } else {
                vertical_stage_ids[lane]
            };
            let pid = prog
                .add_pipeline(
                    PipelineCfg::new(format!("v{lane}"), 2, vertical_buf_bytes)
                        .count(blocks as u64),
                    &[stage_id, merge],
                )
                .unwrap();
            w.verticals.push(pid);
        }
        let h = prog
            .add_pipeline(
                PipelineCfg::new("h", 3, horizontal_buf_bytes).rounds(Rounds::UntilStopped),
                &[merge, collect],
            )
            .unwrap();
        w.horizontal = Some(h);
    }

    let report = prog.run().unwrap();
    let result = collected.lock().clone();
    (result, report)
}

fn sorted_run(start: u64, step: u64, len: usize) -> Vec<u64> {
    (0..len as u64).map(|i| start + i * step).collect()
}

#[test]
fn intersecting_pipelines_merge_sorted_runs() {
    let runs = vec![
        sorted_run(0, 3, 40),
        sorted_run(1, 3, 40),
        sorted_run(2, 3, 40),
    ];
    let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
    expect.sort_unstable();
    let (got, _) = merge_with_fg(runs, false);
    assert_eq!(got, expect);
}

#[test]
fn intersecting_pipelines_with_uneven_runs() {
    let runs = vec![
        sorted_run(0, 1, 100), // long, dense run: consumed fast
        sorted_run(1000, 7, 5),
        vec![], // empty run must not wedge the merge
        sorted_run(0, 50, 33),
    ];
    let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
    expect.sort_unstable();
    let (got, _) = merge_with_fg(runs, false);
    assert_eq!(got, expect);
}

#[test]
fn virtual_reads_same_result_fewer_threads() {
    let k = 16;
    let runs: Vec<Vec<u64>> = (0..k as u64).map(|i| sorted_run(i, k as u64, 25)).collect();
    let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
    expect.sort_unstable();

    let (got_nonvirtual, rep_nonvirtual) = merge_with_fg(runs.clone(), false);
    let (got_virtual, rep_virtual) = merge_with_fg(runs, true);
    assert_eq!(got_nonvirtual, expect);
    assert_eq!(got_virtual, expect);

    // Non-virtual: k read stages + k sources + k sinks + merge/collect +
    // horizontal source/sink.  Virtual: 1 read + 1 shared source + 1 shared
    // sink + merge/collect + horizontal source/sink.
    assert_eq!(rep_nonvirtual.threads_spawned, 3 * k + 4);
    assert_eq!(rep_virtual.threads_spawned, 7);
}

#[test]
fn virtual_group_requires_counted_rounds() {
    let mut prog = Program::new("bad-virtual");
    let v = prog.add_virtual_stage("v", map_stage(|_, _| Ok(())));
    prog.add_pipeline(PipelineCfg::new("a", 1, 8).count(1), &[v])
        .unwrap();
    prog.add_pipeline(
        PipelineCfg::new("b", 1, 8).rounds(Rounds::UntilStopped),
        &[v],
    )
    .unwrap();
    let err = prog.run().unwrap_err();
    assert!(matches!(err, FgError::Config(_)), "got {err:?}");
}

#[test]
fn buffers_cannot_jump_pipelines() {
    // A malicious stage tries to convey a buffer from pipeline A into
    // pipeline B's flow by accepting from A and conveying while belonging
    // only to B: convey() must reject a foreign buffer.
    let mut prog = Program::new("jump");
    let thief = prog.add_stage(
        "thief",
        Box::new(move |ctx: &mut StageCtx| {
            let pids: Vec<_> = ctx.pipelines().collect();
            assert_eq!(pids.len(), 2);
            // Take a buffer from pipeline 0 and try to convey it as if it
            // belonged to pipeline 1 — impossible by construction (tags are
            // immutable), so instead check accept()'s multi-pipeline guard.
            let err = ctx.accept().unwrap_err();
            assert!(matches!(err, FgError::Usage(_)));
            // Drain both pipelines properly.
            while let Some(b) = ctx.accept_from(pids[0])? {
                ctx.convey(b)?;
            }
            while let Some(b) = ctx.accept_from(pids[1])? {
                ctx.convey(b)?;
            }
            Ok(())
        }),
    );
    prog.add_pipeline(PipelineCfg::new("a", 1, 8).count(3), &[thief])
        .unwrap();
    prog.add_pipeline(PipelineCfg::new("b", 1, 8).count(3), &[thief])
        .unwrap();
    prog.run().unwrap();
}

#[test]
fn common_stage_sees_both_pipelines_lanes() {
    let mut prog = Program::new("lanes");
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    let common = prog.add_stage(
        "common",
        Box::new(move |ctx: &mut StageCtx| {
            assert_eq!(ctx.lanes(), 2);
            let pids: Vec<_> = ctx.pipelines().collect();
            assert_eq!(ctx.lane(pids[0])?, 0);
            assert_eq!(ctx.lane(pids[1])?, 1);
            for &p in &pids {
                while let Some(b) = ctx.accept_from(p)? {
                    seen2.fetch_add(1, Ordering::Relaxed);
                    ctx.convey(b)?;
                }
            }
            Ok(())
        }),
    );
    prog.add_pipeline(PipelineCfg::new("a", 2, 8).count(5), &[common])
        .unwrap();
    prog.add_pipeline(PipelineCfg::new("b", 2, 8).count(7), &[common])
        .unwrap();
    prog.run().unwrap();
    assert_eq!(seen.load(Ordering::Relaxed), 12);
}
