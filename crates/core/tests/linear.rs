//! Integration tests for single linear pipelines: the shape supported by
//! FG's original release (§II of the paper).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fg_core::{map_stage, run_linear, FgError, PipelineCfg, Program, Rounds, StageCtx};

#[test]
fn three_stage_pipeline_processes_all_rounds() {
    let rounds = 100u64;
    let sum = Arc::new(AtomicU64::new(0));
    let sum2 = Arc::clone(&sum);

    let report = run_linear(
        "linear3",
        PipelineCfg::new("p", 3, 64).rounds(Rounds::Count(rounds)),
        vec![
            (
                "produce",
                map_stage(|buf, _| {
                    let r = buf.round();
                    buf.copy_from(&r.to_le_bytes());
                    Ok(())
                }),
            ),
            (
                "double",
                map_stage(|buf, _| {
                    let mut v = u64::from_le_bytes(buf.filled().try_into().unwrap());
                    v *= 2;
                    buf.copy_from(&v.to_le_bytes());
                    Ok(())
                }),
            ),
            (
                "consume",
                map_stage(move |buf, _| {
                    let v = u64::from_le_bytes(buf.filled().try_into().unwrap());
                    sum2.fetch_add(v, Ordering::Relaxed);
                    Ok(())
                }),
            ),
        ],
    )
    .unwrap();

    // sum of 2*r for r in 0..100
    assert_eq!(sum.load(Ordering::Relaxed), 2 * (rounds * (rounds - 1) / 2));
    let produce = report.stage("produce").unwrap();
    assert_eq!(produce.buffers_in, rounds);
    assert_eq!(produce.buffers_out, rounds);
    let consume = report.stage("consume").unwrap();
    assert_eq!(consume.buffers_in, rounds);
    // 3 stages + source + sink
    assert_eq!(report.threads_spawned, 5);
}

#[test]
fn rounds_exceed_buffer_pool() {
    // 2 buffers service 500 rounds via sink-to-source recycling.
    let count = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&count);
    run_linear(
        "recycle",
        PipelineCfg::new("p", 2, 16).rounds(Rounds::Count(500)),
        vec![(
            "count",
            map_stage(move |_, _| {
                c2.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }),
        )],
    )
    .unwrap();
    assert_eq!(count.load(Ordering::Relaxed), 500);
}

#[test]
fn zero_rounds_pipeline_terminates() {
    let report = run_linear(
        "empty",
        PipelineCfg::new("p", 2, 16).rounds(Rounds::Count(0)),
        vec![(
            "never",
            map_stage(|_, _| panic!("stage must never run for zero rounds")),
        )],
    )
    .unwrap();
    assert_eq!(report.stage("never").unwrap().buffers_in, 0);
}

#[test]
fn single_buffer_single_round() {
    let report = run_linear(
        "tiny",
        PipelineCfg::new("p", 1, 1).rounds(Rounds::Count(1)),
        vec![(
            "s",
            map_stage(|buf, _| {
                buf.set_filled(1);
                Ok(())
            }),
        )],
    )
    .unwrap();
    assert_eq!(report.stage("s").unwrap().buffers_out, 1);
}

#[test]
fn until_stopped_pipeline_ends_when_stage_stops_it() {
    // The first stage consumes 7 buffers and then stops the pipeline —
    // the dynamic-termination pattern of dsort's receive pipeline.
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    let mut prog = Program::new("stop");
    let first = prog.add_stage(
        "taker",
        Box::new(move |ctx: &mut StageCtx| {
            let pid = ctx.pipelines().next().unwrap();
            for _ in 0..7 {
                let buf = ctx.accept()?.expect("stream must still be open");
                seen2.fetch_add(1, Ordering::Relaxed);
                ctx.convey(buf)?;
            }
            ctx.stop(pid)?;
            Ok(())
        }),
    );
    let cfg = PipelineCfg::new("p", 2, 8).rounds(Rounds::UntilStopped);
    prog.add_pipeline(cfg, &[first]).unwrap();
    prog.run().unwrap();
    assert_eq!(seen.load(Ordering::Relaxed), 7);
}

#[test]
fn stage_error_aborts_program() {
    let err = run_linear(
        "failing",
        PipelineCfg::new("p", 2, 8).rounds(Rounds::Count(1000)),
        vec![
            (
                "fill",
                map_stage(|buf, _| {
                    buf.set_filled(1);
                    Ok(())
                }),
            ),
            (
                "boom",
                map_stage(|buf, _| {
                    if buf.round() == 3 {
                        Err(FgError::stage("boom", "synthetic failure"))
                    } else {
                        Ok(())
                    }
                }),
            ),
        ],
    )
    .unwrap_err();
    match err {
        FgError::Stage { stage, message } => {
            assert_eq!(stage, "boom");
            assert!(message.contains("synthetic"));
        }
        other => panic!("expected stage error, got {other:?}"),
    }
}

#[test]
fn stage_panic_becomes_error() {
    let err = run_linear(
        "panicking",
        PipelineCfg::new("p", 2, 8).rounds(Rounds::Count(10)),
        vec![(
            "kaboom",
            map_stage(|buf, _| {
                if buf.round() == 2 {
                    panic!("deliberate test panic");
                }
                Ok(())
            }),
        )],
    )
    .unwrap_err();
    match err {
        FgError::Panic { stage, message } => {
            assert_eq!(stage, "kaboom");
            assert!(message.contains("deliberate"));
        }
        other => panic!("expected panic error, got {other:?}"),
    }
}

#[test]
fn error_in_late_stage_unblocks_early_stages() {
    // The early stage sleeps so buffers pile up; the late stage errors
    // immediately.  The program must still terminate promptly.
    let err = run_linear(
        "late-failure",
        PipelineCfg::new("p", 2, 8).rounds(Rounds::Count(1_000_000)),
        vec![
            (
                "slowish",
                map_stage(|_, _| {
                    std::thread::sleep(Duration::from_micros(50));
                    Ok(())
                }),
            ),
            (
                "failfast",
                map_stage(|_, _| Err(FgError::stage("failfast", "die"))),
            ),
        ],
    )
    .unwrap_err();
    assert!(matches!(err, FgError::Stage { .. }));
}

#[test]
fn aux_buffer_is_persistent_scratch() {
    run_linear(
        "aux",
        PipelineCfg::new("p", 2, 32).rounds(Rounds::Count(5)),
        vec![(
            "permute",
            map_stage(|buf, ctx| {
                buf.copy_from(&[3, 1, 2]);
                let aux = ctx.aux(3);
                // reverse via aux, the out-of-place pattern of dsort's
                // permute stage
                aux.copy_from_slice(buf.filled());
                aux.reverse();
                let tmp = aux.to_vec();
                buf.copy_from(&tmp);
                assert_eq!(buf.filled(), &[2, 1, 3]);
                Ok(())
            }),
        )],
    )
    .unwrap();
}

#[test]
fn buffer_meta_travels_downstream() {
    run_linear(
        "meta",
        PipelineCfg::new("p", 2, 8).rounds(Rounds::Count(20)),
        vec![
            (
                "tag",
                map_stage(|buf, _| {
                    buf.meta = buf.round() * 10;
                    Ok(())
                }),
            ),
            (
                "check",
                map_stage(|buf, _| {
                    assert_eq!(buf.meta, buf.round() * 10);
                    Ok(())
                }),
            ),
        ],
    )
    .unwrap();
}

#[test]
fn report_records_blocking_time_for_starved_stage() {
    // Stage 1 sleeps per buffer; stage 2 is fast and thus starved, so its
    // blocked_accept must dominate its busy time.
    let report = run_linear(
        "starved",
        PipelineCfg::new("p", 2, 8).rounds(Rounds::Count(20)),
        vec![
            (
                "slow",
                map_stage(|_, _| {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok(())
                }),
            ),
            ("fast", map_stage(|_, _| Ok(()))),
        ],
    )
    .unwrap();
    let fast = report.stage("fast").unwrap();
    assert!(
        fast.blocked_accept > fast.busy(),
        "starved stage should mostly block: {fast:?}"
    );
}

#[test]
fn empty_chain_is_rejected() {
    let mut prog = Program::new("bad");
    let err = prog
        .add_pipeline(PipelineCfg::new("p", 1, 8), &[])
        .unwrap_err();
    assert!(matches!(err, FgError::Config(_)));
}

#[test]
fn zero_buffers_rejected() {
    let mut prog = Program::new("bad");
    let s = prog.add_stage("s", map_stage(|_, _| Ok(())));
    let err = prog
        .add_pipeline(PipelineCfg::new("p", 0, 8), &[s])
        .unwrap_err();
    assert!(matches!(err, FgError::Config(_)));
}

#[test]
fn unused_stage_rejected_at_run() {
    let mut prog = Program::new("bad");
    let s = prog.add_stage("used", map_stage(|_, _| Ok(())));
    let _unused = prog.add_stage("unused", map_stage(|_, _| Ok(())));
    prog.add_pipeline(PipelineCfg::new("p", 1, 8).count(1), &[s])
        .unwrap();
    let err = prog.run().unwrap_err();
    match err {
        FgError::Config(m) => assert!(m.contains("unused")),
        other => panic!("expected config error, got {other:?}"),
    }
}

#[test]
fn duplicate_stage_in_chain_rejected() {
    let mut prog = Program::new("bad");
    let s = prog.add_stage("s", map_stage(|_, _| Ok(())));
    let err = prog
        .add_pipeline(PipelineCfg::new("p", 1, 8).count(1), &[s, s])
        .unwrap_err();
    assert!(matches!(err, FgError::Config(_)));
}

#[test]
fn pipelined_overlap_beats_serial_sum() {
    // Two stages each sleep 1ms per buffer over 40 rounds.  With overlap,
    // wall time must be well under the serial 80ms (we allow generous
    // scheduling slack: < 95% of serial).
    let stage = |_: &mut fg_core::Buffer, _: &mut StageCtx| {
        std::thread::sleep(Duration::from_millis(1));
        Ok(())
    };
    let report = run_linear(
        "overlap",
        PipelineCfg::new("p", 4, 8).rounds(Rounds::Count(40)),
        vec![("a", map_stage(stage)), ("b", map_stage(stage))],
    )
    .unwrap();
    let serial = Duration::from_millis(80);
    assert!(
        report.wall < serial.mul_f64(0.95),
        "expected overlap, wall = {:?}",
        report.wall
    );
    assert!(report.overlap_factor() > 1.2, "overlap factor too low");
}
