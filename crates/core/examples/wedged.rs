//! A deliberately wedged pipeline, rescued by the stall watchdog.
//!
//! The `hoard` stage accepts buffers and never conveys or discards them.
//! With a pool of two buffers the pipeline deadlocks almost immediately:
//! the source starves waiting for recycled buffers, the `drain` stage
//! starves waiting for input, and nothing records a span ever again.  The
//! watchdog notices the silence after one second, prints a post-mortem to
//! stderr, writes the same report as JSON (first CLI argument, default
//! `wedged-postmortem.json`), and aborts the program with
//! [`FgError::Stalled`] naming the hoarder.
//!
//! ```text
//! cargo run -p fg-core --example wedged -- /tmp/postmortem.json
//! ```
//!
//! The process exits 0 exactly when the watchdog caught the wedge and
//! blamed the right stage — CI runs this as a smoke test.

use std::process::ExitCode;
use std::time::Duration;

use fg_core::{
    map_stage, Buffer, FgError, PipelineCfg, Program, Result, Rounds, Stage, StageCtx, WatchdogCfg,
};

/// Accepts every buffer and keeps it: the classic leak that wedges a
/// bounded-pool pipeline.
struct Hoarder {
    stash: Vec<Buffer>,
}

impl Stage for Hoarder {
    fn run(&mut self, ctx: &mut StageCtx) -> Result<()> {
        while let Some(buf) = ctx.accept()? {
            self.stash.push(buf);
        }
        Ok(())
    }
}

fn main() -> ExitCode {
    let artifact = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "wedged-postmortem.json".into());

    let mut prog = Program::new("wedged");
    let hoard = prog.add_stage("hoard", Box::new(Hoarder { stash: Vec::new() }));
    let drain = prog.add_stage("drain", map_stage(|_buf, _ctx| Ok(())));
    prog.add_pipeline(
        PipelineCfg::new("p", 2, 64).rounds(Rounds::Count(1000)),
        &[hoard, drain],
    )
    .expect("wire pipeline");
    prog.set_watchdog(WatchdogCfg::new(Duration::from_secs(1)).artifact(&artifact));

    match prog.run() {
        Err(FgError::Stalled { culprit }) => {
            eprintln!("watchdog verdict: `{culprit}` (post-mortem in {artifact})");
            if culprit.contains("hoard") {
                ExitCode::SUCCESS
            } else {
                eprintln!("expected the culprit to be the hoarding stage");
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("expected FgError::Stalled, got {other:?}");
            ExitCode::FAILURE
        }
    }
}
