//! # fg-apps: out-of-core algorithms on FG beyond sorting
//!
//! The paper's conclusion (§VIII) argues FG's multiple-pipeline extensions
//! "would be suitable for the design of out-of-core algorithms other than
//! sorting" and solicits candidates.  This crate supplies one:
//!
//! * [`groupby`] — a one-pass distributed group-by-count aggregation built
//!   from the same disjoint send/receive pipeline shape as dsort's pass 1,
//!   with an in-block combiner and hash-partitioned merge tables.
//! * [`transpose`] — out-of-core matrix transpose, the other classic PDM
//!   workload: oblivious like csort, one balanced linear pipeline per node.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod groupby;
pub mod transpose;
