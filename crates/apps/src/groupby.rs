//! Out-of-core distributed group-by aggregation on FG.
//!
//! The paper closes by arguing that FG's multiple-pipeline extensions "would
//! be suitable for the design of out-of-core algorithms other than sorting"
//! (§VIII).  This module is such an algorithm: count the occurrences of
//! every key in a dataset far larger than any node's memory, in **one
//! pass**, using exactly the pass-1 shape of dsort (Figure 6):
//!
//! * the **send pipeline** `read → aggregate → send` streams the node's
//!   local input; the aggregate stage pre-combines duplicate keys *within
//!   each block* (a combiner, shrinking traffic for skewed inputs) and the
//!   send stage routes each partial count to the key's owner
//!   (`hash(key) mod P`) — unbalanced communication, hence disjoint
//!   pipelines;
//! * the **receive pipeline** `receive → merge` folds incoming partial
//!   counts into the node's in-memory table (bounded by the number of
//!   *distinct* keys it owns, not by the dataset size);
//! * a final write stage spills each node's table to its disk, sorted by
//!   key, as the output file.
//!
//! Records are the same `(u64 key, payload)` format as fg-sort's, so the
//! same input generator, distributions, and disks are reused.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_cluster::{Cluster, ClusterCfg, ClusterError, Communicator};
use fg_core::{map_stage, PipelineCfg, Program, Rounds, Stage, StageCtx};
use fg_pdm::DiskRef;
use fg_sort::chunks::{self, CHUNK_HEADER_BYTES};
use fg_sort::config::SortConfig;
use fg_sort::input::INPUT_FILE;
use fg_sort::SortError;
use parking_lot::Mutex;

/// Message tag for group-by traffic.
const TAG_GROUPBY: u64 = 0x6B0B_0001;
const MSG_DATA: u8 = 0;
const MSG_DONE: u8 = 1;

/// Name of the per-node output file: `(key, count)` pairs sorted by key,
/// 16 bytes each, holding the counts of the keys this node owns.
pub const COUNTS_FILE: &str = "groupby_counts";

/// Result of a group-by run.
#[derive(Debug, Clone)]
pub struct GroupByReport {
    /// Max-across-nodes wall time of the single pass.
    pub pass: Duration,
    /// Distinct keys owned per node.
    pub distinct_per_node: Vec<u64>,
    /// Total records aggregated (must equal the input record count).
    pub total_records: u64,
}

/// Which node owns a key.
pub fn owner_of(key: u64, nodes: usize) -> usize {
    // Multiplicative hash so consecutive keys spread across nodes.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % nodes
}

/// Run the one-pass distributed group-by-count over the provisioned disks
/// (each holding fg-sort's `input` file per `cfg`); leaves each node's
/// sorted `(key, count)` table in [`COUNTS_FILE`] on its disk.
pub fn run_groupby(cfg: &SortConfig, disks: &[DiskRef]) -> Result<GroupByReport, SortError> {
    cfg.validate()?;
    if disks.len() != cfg.nodes {
        return Err(SortError::Config(format!(
            "need {} disks, got {}",
            cfg.nodes,
            disks.len()
        )));
    }
    let cfg = cfg.clone();
    let disks_arc: Vec<DiskRef> = disks.to_vec();

    let run = Cluster::run(
        ClusterCfg {
            nodes: cfg.nodes,
            net: cfg.net,
        },
        move |node| -> Result<(Duration, u64, u64), ClusterError> {
            let rank = node.rank();
            let comm = node.comm().clone();
            let disk = Arc::clone(&disks_arc[rank]);
            comm.barrier()?;
            let t0 = Instant::now();
            let (distinct, records) =
                groupby_pass(&cfg, rank, &comm, &disk).map_err(ClusterError::from)?;
            comm.barrier()?;
            let nanos = comm.allreduce_max(t0.elapsed().as_nanos() as u64)?;
            let total = comm.allreduce_sum(records)?;
            Ok((Duration::from_nanos(nanos), distinct, total))
        },
    )
    .map_err(|e| SortError::Comm(e.to_string()))?;

    Ok(GroupByReport {
        pass: run.results[0].0,
        distinct_per_node: run.results.iter().map(|r| r.1).collect(),
        total_records: run.results[0].2,
    })
}

/// The single pass on one node.
fn groupby_pass(
    cfg: &SortConfig,
    rank: usize,
    comm: &Communicator,
    disk: &DiskRef,
) -> Result<(u64, u64), SortError> {
    let nodes = cfg.nodes;
    let input_bytes = cfg.bytes_per_node() as usize;
    let nblocks = input_bytes.div_ceil(cfg.block_bytes) as u64;
    const PAIR: usize = 16; // (u64 key, u64 count)

    let mut prog = Program::new(format!("groupby-n{rank}"));

    // ---- send pipeline ----
    let read_disk = Arc::clone(disk);
    let block_bytes = cfg.block_bytes;
    let read = prog.add_stage(
        "read",
        map_stage(move |buf, _ctx| {
            let off = buf.round() * block_bytes as u64;
            let want = block_bytes.min(input_bytes - off as usize);
            read_disk
                .read_at(INPUT_FILE, off, &mut buf.space_mut()[..want])
                .map_err(SortError::from)?;
            buf.set_filled(want);
            Ok(())
        }),
    );

    // Combiner: fold the block's records into per-destination (key, count)
    // chunk lists; duplicates within a block collapse here.
    let fmt = cfg.record;
    let aggregate = prog.add_stage(
        "aggregate",
        map_stage(move |buf, _ctx| {
            let mut partial: HashMap<u64, u64> = HashMap::new();
            for rec in fmt.records(buf.filled()) {
                *partial.entry(fmt.key(rec)).or_insert(0) += 1;
            }
            let mut groups: Vec<Vec<u8>> = vec![Vec::new(); nodes];
            for (key, count) in partial {
                let g = &mut groups[owner_of(key, nodes)];
                g.extend_from_slice(&key.to_le_bytes());
                g.extend_from_slice(&count.to_le_bytes());
            }
            let mut packed = Vec::with_capacity(
                groups.iter().map(|g| g.len()).sum::<usize>() + nodes * CHUNK_HEADER_BYTES,
            );
            for (d, g) in groups.iter().enumerate() {
                if !g.is_empty() {
                    chunks::push_chunk(&mut packed, d as u64, 0, g);
                }
            }
            debug_assert!(packed.len() <= buf.capacity(), "combiner output too large");
            buf.copy_from(&packed);
            Ok(())
        }),
    );

    let comm_send = comm.clone();
    let send = prog.add_stage(
        "send",
        Box::new(move |ctx: &mut StageCtx| {
            while let Some(buf) = ctx.accept()? {
                for chunk in chunks::iter_chunks(buf.filled()) {
                    let chunk = chunk?;
                    let mut payload = Vec::with_capacity(1 + chunk.data.len());
                    payload.push(MSG_DATA);
                    payload.extend_from_slice(chunk.data);
                    comm_send
                        .send(chunk.a as usize, TAG_GROUPBY, payload)
                        .map_err(SortError::from)?;
                }
                ctx.convey(buf)?;
            }
            for dst in 0..nodes {
                comm_send
                    .send(dst, TAG_GROUPBY, vec![MSG_DONE])
                    .map_err(SortError::from)?;
            }
            Ok(())
        }) as Box<dyn Stage>,
    );

    // ---- receive pipeline ----
    // The receive stage packs incoming partial counts into buffers; the
    // merge stage folds them into the node's table.
    let comm_recv = comm.clone();
    let receive = prog.add_stage(
        "receive",
        Box::new(move |ctx: &mut StageCtx| {
            let pid = ctx.pipelines().next().expect("receive pipeline");
            let mut carry: Vec<u8> = Vec::new();
            let mut dones = 0usize;
            loop {
                let mut buf = match ctx.accept()? {
                    Some(b) => b,
                    None => return Ok(()),
                };
                buf.clear();
                while buf.remaining() > 0 {
                    if !carry.is_empty() {
                        let n = buf.append(&carry);
                        carry.drain(..n);
                        continue;
                    }
                    if dones == nodes {
                        break;
                    }
                    let msg = comm_recv.recv(None, TAG_GROUPBY).map_err(SortError::from)?;
                    match msg.payload.first() {
                        Some(&MSG_DONE) => dones += 1,
                        Some(&MSG_DATA) => {
                            let data = &msg.payload[1..];
                            let n = buf.append(data);
                            carry.extend_from_slice(&data[n..]);
                        }
                        _ => return Err(SortError::Corrupt("empty group-by message".into()).into()),
                    }
                }
                if buf.is_empty() {
                    ctx.discard(buf)?;
                } else {
                    ctx.convey(buf)?;
                }
                if dones == nodes && carry.is_empty() {
                    ctx.stop(pid)?;
                    return Ok(());
                }
            }
        }) as Box<dyn Stage>,
    );

    let table = Arc::new(Mutex::new(HashMap::<u64, u64>::new()));
    let t2 = Arc::clone(&table);
    let merge = prog.add_stage(
        "merge",
        map_stage(move |buf, _ctx| {
            let mut table = t2.lock();
            for pair in buf.filled().chunks_exact(PAIR) {
                let key = u64::from_le_bytes(pair[..8].try_into().expect("8"));
                let count = u64::from_le_bytes(pair[8..].try_into().expect("8"));
                *table.entry(key).or_insert(0) += count;
            }
            Ok(())
        }),
    );

    // Pipelines: one buffer must fit a block's worth of combined pairs plus
    // headers (a block of r records can produce at most r distinct keys).
    // The send buffer first holds a raw input block (read stage), then the
    // combined pairs + chunk headers (aggregate stage): size for both.
    let send_buf =
        cfg.block_bytes.max(cfg.records_per_block() * PAIR) + cfg.nodes * CHUNK_HEADER_BYTES + 64;
    // The receive buffer must be a whole number of pairs, or a pair would
    // split across buffers and the merge stage would parse garbage.
    let recv_buf = send_buf.max(cfg.block_bytes).next_multiple_of(PAIR);
    prog.add_pipeline(
        PipelineCfg::new("send", cfg.pipeline_buffers, send_buf).rounds(Rounds::Count(nblocks)),
        &[read, aggregate, send],
    )?;
    prog.add_pipeline(
        PipelineCfg::new("recv", cfg.pipeline_buffers, recv_buf).rounds(Rounds::UntilStopped),
        &[receive, merge],
    )?;
    prog.run()?;

    // Spill the table, sorted by key.
    let table = Arc::try_unwrap(table)
        .map_err(|_| SortError::Fg("table still shared after run".into()))?
        .into_inner();
    let mut pairs: Vec<(u64, u64)> = table.into_iter().collect();
    pairs.sort_unstable();
    let mut bytes = Vec::with_capacity(pairs.len() * PAIR);
    let mut records = 0u64;
    for (key, count) in &pairs {
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&count.to_le_bytes());
        records += count;
    }
    disk.write_at(COUNTS_FILE, 0, &bytes)?;
    // Write barrier: the counts table is read back after the run.
    disk.flush()?;
    Ok((pairs.len() as u64, records))
}

/// Read back a node's `(key, count)` table (verification helper).
pub fn read_counts(disk: &DiskRef) -> Vec<(u64, u64)> {
    let bytes = disk.snapshot(COUNTS_FILE).unwrap_or_default();
    bytes
        .chunks_exact(16)
        .map(|p| {
            (
                u64::from_le_bytes(p[..8].try_into().expect("8")),
                u64::from_le_bytes(p[8..].try_into().expect("8")),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_covers_all_nodes() {
        let mut seen = [false; 8];
        for key in 0..10_000u64 {
            seen[owner_of(key, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn owner_is_stable() {
        assert_eq!(owner_of(12345, 7), owner_of(12345, 7));
    }
}
