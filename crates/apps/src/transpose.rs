//! Out-of-core matrix transpose on FG.
//!
//! The other classic Parallel Disk Model workload (Vitter's survey, [1] in
//! the paper): transpose an `R × C` matrix of fixed-size elements that is
//! far larger than memory.  Like csort — and unlike dsort — the I/O and
//! communication pattern is *oblivious*, so a **single linear pipeline**
//! per node suffices — though, unlike csort's, the per-round exchange is
//! only *statically known*, not balanced (a round's runs may concentrate
//! on one stripe owner, so buffers are sized for the worst case):
//!
//! * the input is banded: node `q` owns row bands of `tile_rows` rows in
//!   round-robin order (band `b` on node `b mod P`), stored contiguously
//!   in its local `tin` file;
//! * per round, the pipeline runs `read → tilt → exchange → write`: read
//!   one band, *tilt* it (in-memory tile transpose: column `j` of the band
//!   becomes a contiguous run of the output row `j`), exchange the runs to
//!   the owners of their striped-output locations (balanced `alltoallv`),
//!   and write them — the same stripe-placement machinery the sorts use;
//! * the output is the `C × R` transpose, row-major, striped across the
//!   cluster's disks in PDM order.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_cluster::{Cluster, ClusterCfg, ClusterError, Communicator, NetCfg};
use fg_core::{map_stage, PipelineCfg, Program, Rounds};
use fg_pdm::{DiskCfg, SimDisk, Striping};
use fg_sort::chunks::{self, CHUNK_HEADER_BYTES};
use fg_sort::SortError;

/// Per-node input file: the node's row bands, concatenated in round order.
pub const TIN_FILE: &str = "transpose_in";
/// Striped output file: the transposed matrix, row-major in PDM order.
pub const TOUT_FILE: &str = "transpose_out";

/// Geometry and cost configuration of a transpose run.
#[derive(Debug, Clone, Copy)]
pub struct TransposeConfig {
    /// Cluster nodes.
    pub nodes: usize,
    /// Matrix rows (input).
    pub rows: usize,
    /// Matrix columns (input).
    pub cols: usize,
    /// Bytes per element.
    pub elem_bytes: usize,
    /// Rows per band (per round); `rows` must be divisible by
    /// `nodes * tile_rows` so every node runs the same number of rounds.
    pub tile_rows: usize,
    /// Stripe block size of the output file, in bytes.
    pub block_bytes: usize,
    /// Buffers per pipeline.
    pub pipeline_buffers: usize,
    /// Disk cost model.
    pub disk: DiskCfg,
    /// Network cost model.
    pub net: NetCfg,
}

impl TransposeConfig {
    /// A zero-cost configuration for tests.
    pub fn test_default(nodes: usize, rows: usize, cols: usize) -> Self {
        TransposeConfig {
            nodes,
            rows,
            cols,
            elem_bytes: 8,
            tile_rows: (rows / (nodes * 4)).max(1),
            block_bytes: 1024,
            pipeline_buffers: 3,
            disk: DiskCfg::zero(),
            net: NetCfg::zero(),
        }
    }

    /// Total matrix bytes.
    pub fn total_bytes(&self) -> u64 {
        (self.rows * self.cols * self.elem_bytes) as u64
    }

    /// Row bands per node.
    pub fn bands_per_node(&self) -> usize {
        self.rows / (self.nodes * self.tile_rows)
    }

    /// Validate the geometry.
    pub fn validate(&self) -> Result<(), SortError> {
        let err = |m: String| Err(SortError::Config(m));
        if self.nodes == 0 || self.rows == 0 || self.cols == 0 || self.elem_bytes == 0 {
            return err("degenerate transpose geometry".into());
        }
        if self.tile_rows == 0 || !self.rows.is_multiple_of(self.nodes * self.tile_rows) {
            return err(format!(
                "rows = {} must be divisible by nodes * tile_rows = {}",
                self.rows,
                self.nodes * self.tile_rows
            ));
        }
        if self.block_bytes == 0 || !self.block_bytes.is_multiple_of(self.elem_bytes) {
            return err(format!(
                "block_bytes = {} must be a positive multiple of elem_bytes = {}",
                self.block_bytes, self.elem_bytes
            ));
        }
        if self.pipeline_buffers == 0 {
            return err("need at least one pipeline buffer".into());
        }
        Ok(())
    }
}

/// Provision per-node disks with banded input built from `element`, a
/// function from `(row, col)` to the element's bytes.
pub fn provision<F>(cfg: &TransposeConfig, element: F) -> Vec<Arc<SimDisk>>
where
    F: Fn(usize, usize) -> Vec<u8>,
{
    let eb = cfg.elem_bytes;
    (0..cfg.nodes)
        .map(|q| {
            let disk = SimDisk::new(cfg.disk);
            let mut tin = Vec::with_capacity(cfg.bands_per_node() * cfg.tile_rows * cfg.cols * eb);
            for t in 0..cfg.bands_per_node() {
                let band = t * cfg.nodes + q;
                let row0 = band * cfg.tile_rows;
                for i in row0..row0 + cfg.tile_rows {
                    for j in 0..cfg.cols {
                        let e = element(i, j);
                        assert_eq!(e.len(), eb, "element size mismatch");
                        tin.extend_from_slice(&e);
                    }
                }
            }
            disk.load(TIN_FILE, tin);
            disk
        })
        .collect()
}

/// Result of a transpose run.
#[derive(Debug, Clone)]
pub struct TransposeReport {
    /// Max-across-nodes wall time of the single pass.
    pub pass: Duration,
    /// Per-node bytes sent over the interconnect.
    pub bytes_sent: Vec<u64>,
}

/// Run the out-of-core transpose; leaves the striped `C × R` output in
/// [`TOUT_FILE`] on every disk.
pub fn run_transpose(
    cfg: &TransposeConfig,
    disks: &[Arc<SimDisk>],
) -> Result<TransposeReport, SortError> {
    cfg.validate()?;
    if disks.len() != cfg.nodes {
        return Err(SortError::Config(format!(
            "need {} disks, got {}",
            cfg.nodes,
            disks.len()
        )));
    }
    let cfg = *cfg;
    let disks_arc: Vec<Arc<SimDisk>> = disks.to_vec();

    let run = Cluster::run(
        ClusterCfg {
            nodes: cfg.nodes,
            net: cfg.net,
        },
        move |node| -> Result<Duration, ClusterError> {
            let rank = node.rank();
            let comm = node.comm().clone();
            let disk = Arc::clone(&disks_arc[rank]);
            comm.barrier()?;
            let t0 = Instant::now();
            transpose_pass(&cfg, rank, &comm, &disk).map_err(ClusterError::from)?;
            comm.barrier()?;
            let nanos = comm.allreduce_max(t0.elapsed().as_nanos() as u64)?;
            Ok(Duration::from_nanos(nanos))
        },
    )
    .map_err(|e| SortError::Comm(e.to_string()))?;

    Ok(TransposeReport {
        pass: run.results[0],
        bytes_sent: run.traffic.iter().map(|t| t.bytes_sent).collect(),
    })
}

/// The single pass on one node.
fn transpose_pass(
    cfg: &TransposeConfig,
    rank: usize,
    comm: &Communicator,
    disk: &Arc<SimDisk>,
) -> Result<(), SortError> {
    let (nodes, eb) = (cfg.nodes, cfg.elem_bytes);
    let (rows, cols, tr) = (cfg.rows, cfg.cols, cfg.tile_rows);
    let band_bytes = tr * cols * eb;
    let rounds = cfg.bands_per_node() as u64;
    let striping = Striping::new(nodes, cfg.block_bytes);
    // Tilting produces `cols` runs, each of which may split at stripe-
    // block boundaries.  The exchange is *oblivious* but not balanced per
    // round: depending on the geometry, a whole round's runs can land on
    // one stripe owner, so the buffer must hold up to every node's band.
    let run_bytes = tr * eb;
    let chunks_per_run = run_bytes / cfg.block_bytes + 2;
    let header_slack = nodes * cols * chunks_per_run * CHUNK_HEADER_BYTES;
    let buf_bytes = nodes * band_bytes + header_slack + 64;

    let mut prog = Program::new(format!("transpose-n{rank}"));

    let read_disk = Arc::clone(disk);
    let read = prog.add_stage(
        "read",
        map_stage(move |buf, _ctx| {
            let off = buf.round() * band_bytes as u64;
            read_disk
                .read_at(TIN_FILE, off, &mut buf.space_mut()[..band_bytes])
                .map_err(SortError::from)?;
            buf.set_filled(band_bytes);
            Ok(())
        }),
    );

    // tilt: tile transpose — column j of the band becomes a contiguous
    // run of output row j at global output offset (j*rows + row0) * eb —
    // packed as (global offset, run) chunks, out of place via aux.
    let tilt = prog.add_stage(
        "tilt",
        map_stage(move |buf, ctx| {
            let t = buf.round() as usize;
            let band = t * nodes + rank;
            let row0 = band * tr;
            let total = buf.capacity();
            let aux = ctx.aux(total);
            let mut off = 0usize;
            {
                let data = buf.filled();
                for j in 0..cols {
                    // Header for output row j's run.
                    let goff = ((j * rows + row0) * eb) as u64;
                    aux[off..off + 8].copy_from_slice(&goff.to_le_bytes());
                    aux[off + 8..off + 16].copy_from_slice(&0u64.to_le_bytes());
                    aux[off + 16..off + 24].copy_from_slice(&((tr * eb) as u64).to_le_bytes());
                    off += CHUNK_HEADER_BYTES;
                    for i in 0..tr {
                        let src = (i * cols + j) * eb;
                        aux[off..off + eb].copy_from_slice(&data[src..src + eb]);
                        off += eb;
                    }
                }
            }
            let packed = aux[..off].to_vec();
            buf.copy_from(&packed);
            Ok(())
        }),
    );

    // exchange: split each run along stripe boundaries and route the
    // pieces to their owners (balanced alltoallv per round).
    let comm2 = comm.clone();
    let exchange = prog.add_stage(
        "exchange",
        map_stage(move |buf, _ctx| {
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); nodes];
            for chunk in chunks::iter_chunks(buf.filled()) {
                let chunk = chunk?;
                for (dest, _local, range) in striping.split_range(chunk.a, chunk.data.len()) {
                    chunks::push_chunk(
                        &mut parts[dest],
                        chunk.a + range.start as u64,
                        0,
                        &chunk.data[range],
                    );
                }
            }
            let received = comm2.alltoallv(parts).map_err(SortError::from)?;
            buf.clear();
            for part in received {
                let n = buf.append(&part);
                debug_assert_eq!(n, part.len(), "transpose exchange overflow");
            }
            Ok(())
        }),
    );

    let write_disk = Arc::clone(disk);
    let striping_w = Striping::new(nodes, cfg.block_bytes);
    let write = prog.add_stage(
        "write",
        map_stage(move |buf, _ctx| {
            let mut runs = Vec::new();
            for chunk in chunks::iter_chunks(buf.filled()) {
                let chunk = chunk?;
                let (dest, local) = striping_w.locate_byte(chunk.a);
                debug_assert_eq!(dest, rank, "stripe piece on wrong node");
                runs.push((local, chunk.data.to_vec()));
            }
            for (off, data) in chunks::coalesce_writes(runs) {
                write_disk
                    .write_at(TOUT_FILE, off, &data)
                    .map_err(SortError::from)?;
            }
            Ok(())
        }),
    );

    prog.add_pipeline(
        PipelineCfg::new("pass", cfg.pipeline_buffers, buf_bytes).rounds(Rounds::Count(rounds)),
        &[read, tilt, exchange, write],
    )?;
    prog.run()?;
    Ok(())
}

/// Verify the striped output equals the transpose of the generated input.
pub fn verify_transpose<F>(
    cfg: &TransposeConfig,
    disks: &[Arc<SimDisk>],
    element: F,
) -> Result<(), SortError>
where
    F: Fn(usize, usize) -> Vec<u8>,
{
    let striping = Striping::new(cfg.nodes, cfg.block_bytes);
    let got = striping.assemble(disks, TOUT_FILE, cfg.total_bytes())?;
    let eb = cfg.elem_bytes;
    for j in 0..cfg.cols {
        for i in 0..cfg.rows {
            let off = (j * cfg.rows + i) * eb;
            let expect = element(i, j);
            if got[off..off + eb] != expect[..] {
                return Err(SortError::Verify(format!(
                    "output[{j}][{i}] != input[{i}][{j}]"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(i: usize, j: usize) -> Vec<u8> {
        (((i as u64) << 32) | j as u64).to_le_bytes().to_vec()
    }

    fn check(cfg: &TransposeConfig) {
        let disks = provision(cfg, ident);
        run_transpose(cfg, &disks).expect("transpose run");
        verify_transpose(cfg, &disks, ident).expect("transpose verified");
    }

    #[test]
    fn square_matrix_four_nodes() {
        check(&TransposeConfig::test_default(4, 128, 128));
    }

    #[test]
    fn wide_matrix() {
        check(&TransposeConfig::test_default(4, 64, 512));
    }

    #[test]
    fn tall_matrix() {
        check(&TransposeConfig::test_default(4, 512, 32));
    }

    #[test]
    fn single_node() {
        check(&TransposeConfig::test_default(1, 32, 48));
    }

    #[test]
    fn tiny_tiles() {
        let mut cfg = TransposeConfig::test_default(2, 64, 16);
        cfg.tile_rows = 1;
        check(&cfg);
    }

    #[test]
    fn with_cost_model() {
        let mut cfg = TransposeConfig::test_default(3, 96, 64);
        cfg.tile_rows = 8;
        cfg.disk = DiskCfg::new(Duration::from_micros(20), 16.0 * 1024.0 * 1024.0);
        cfg.net = NetCfg::new(Duration::from_micros(5), 64.0 * 1024.0 * 1024.0);
        check(&cfg);
    }

    #[test]
    fn bad_geometry_rejected() {
        let mut cfg = TransposeConfig::test_default(4, 100, 16);
        cfg.tile_rows = 7; // 100 % (4*7) != 0
        assert!(cfg.validate().is_err());
        let mut cfg = TransposeConfig::test_default(2, 64, 16);
        cfg.block_bytes = 13; // not a multiple of elem_bytes
        assert!(cfg.validate().is_err());
    }
}
