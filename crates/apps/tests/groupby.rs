//! End-to-end tests for the distributed group-by aggregation.

use std::collections::HashMap;

use fg_apps::groupby::{owner_of, read_counts, run_groupby};
use fg_sort::config::SortConfig;
use fg_sort::input::{generate_node_input, provision};
use fg_sort::keygen::KeyDist;

/// Reference: count keys across all nodes' inputs sequentially.
fn reference_counts(cfg: &SortConfig) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    for rank in 0..cfg.nodes {
        let bytes = generate_node_input(cfg, rank);
        for rec in cfg.record.records(&bytes) {
            *counts.entry(cfg.record.key(rec)).or_insert(0) += 1;
        }
    }
    counts
}

fn check_groupby(cfg: &SortConfig) {
    let disks = provision(cfg);
    let report = run_groupby(cfg, &disks).expect("groupby run");
    assert_eq!(report.total_records, cfg.total_records() as u64);

    let expect = reference_counts(cfg);
    let mut got: HashMap<u64, u64> = HashMap::new();
    for (rank, disk) in disks.iter().enumerate() {
        let mut prev: Option<u64> = None;
        for (key, count) in read_counts(disk) {
            // Each node's table is sorted, disjoint, and owned by hash.
            assert!(prev.map(|p| p < key).unwrap_or(true), "unsorted table");
            prev = Some(key);
            assert_eq!(owner_of(key, cfg.nodes), rank, "key on wrong node");
            assert!(got.insert(key, count).is_none(), "key on two nodes");
        }
    }
    assert_eq!(got, expect);
    let distinct: u64 = report.distinct_per_node.iter().sum();
    assert_eq!(distinct as usize, expect.len());
}

#[test]
fn groupby_poisson_heavy_duplication() {
    let mut cfg = SortConfig::test_default(4, 4096);
    cfg.dist = KeyDist::Poisson; // ~10 distinct keys over 16k records
    check_groupby(&cfg);
}

#[test]
fn groupby_uniform_mostly_distinct() {
    let cfg = SortConfig::test_default(4, 2048);
    check_groupby(&cfg);
}

#[test]
fn groupby_all_equal_single_hot_key() {
    let mut cfg = SortConfig::test_default(4, 2048);
    cfg.dist = KeyDist::AllEqual;
    let disks = provision(&cfg);
    let report = run_groupby(&cfg, &disks).expect("groupby");
    // One distinct key in the whole dataset, owned by exactly one node.
    let distinct: u64 = report.distinct_per_node.iter().sum();
    assert_eq!(distinct, 1);
    let total: u64 = disks.iter().flat_map(read_counts).map(|(_, c)| c).sum();
    assert_eq!(total, cfg.total_records() as u64);
}

#[test]
fn groupby_hotkey_skew() {
    let mut cfg = SortConfig::test_default(3, 1536);
    cfg.dist = KeyDist::HotKey { hot_percent: 90 };
    check_groupby(&cfg);
}

#[test]
fn groupby_single_node() {
    let mut cfg = SortConfig::test_default(1, 1024);
    cfg.dist = KeyDist::Poisson;
    check_groupby(&cfg);
}

#[test]
fn groupby_with_cost_model() {
    let mut cfg = SortConfig::experiment_default(4, 1024);
    cfg.disk = fg_pdm::DiskCfg::new(std::time::Duration::from_micros(20), 8.0 * 1024.0 * 1024.0);
    cfg.net = fg_cluster::NetCfg::new(std::time::Duration::from_micros(5), 32.0 * 1024.0 * 1024.0);
    cfg.dist = KeyDist::Poisson;
    check_groupby(&cfg);
}

#[test]
fn groupby_64_byte_records() {
    // Regression: the send buffer must hold a full input block even when
    // the combined-pair representation is smaller than the block.
    let mut cfg = SortConfig::test_default(3, 512);
    cfg.record = fg_sort::record::RecordFormat::REC64;
    cfg.block_bytes = 64 * 64;
    cfg.run_bytes = 4 * cfg.block_bytes;
    cfg.vertical_buf_bytes = 8 * 64;
    cfg.dist = KeyDist::Poisson;
    check_groupby(&cfg);
}

#[test]
fn groupby_zipf_skew() {
    let mut cfg = SortConfig::test_default(4, 4096);
    cfg.dist = KeyDist::Zipf { n: 200 };
    check_groupby(&cfg);
}
