//! The out-of-core acceptance experiment: real files, real syscalls.
//!
//! A single node streams `read → compute → write` over an
//! [`OsDisk`](fg_pdm::OsDisk) in a scratch directory, once synchronously
//! (every `read_at`/`write_at` is a blocking positioned syscall) and once
//! through an [`IoScheduler`] (read-ahead prefetches the next blocks while
//! the caller computes; write-behind queues the output and coalesces
//! adjacent blocks into larger backend writes).  The loop body is
//! *identical* in both arms — the scheduler alone earns the overlap, which
//! is exactly the claim the `--io-depth` flag makes for the sort
//! pipelines.
//!
//! Both arms run the *durable* [`OsDisk`] mode (`sync_data` after every
//! write): each completed write has reached the device, and each write
//! therefore pays device latency during which the CPU is idle.  That is
//! the latency a scheduler can genuinely hide — page-cache writes are pure
//! memcpy, so on a single-core host the worker thread would only steal
//! cycles from compute and "overlap" nothing.  Compute per block is
//! calibrated to the *measured* per-block durable I/O cost of this
//! machine's filesystem, so the experiment reports an overlap win rather
//! than a compute/IO imbalance artifact.  Both arms end with a
//! [`flush`](fg_pdm::Disk::flush) so deferred writes are charged to the
//! scheduled arm, and the two output files are compared byte-for-byte
//! before any timing is reported.

use std::time::{Duration, Instant};

use fg_core::metrics::MetricsRegistry;
use fg_pdm::{Disk, DiskRef, IoScheduler, OsDisk, ScratchDir};
use fg_sort::SortError;

use crate::overlap::{calibrate_passes, compute};

/// Result of the out-of-core overlap experiment.
#[derive(Debug, Clone, Copy)]
pub struct IoOverlapResult {
    /// Wall time of the synchronous loop on the bare [`OsDisk`].
    pub sync: Duration,
    /// Wall time of the same loop through the [`IoScheduler`].
    pub overlapped: Duration,
    /// Blocks processed (per arm).
    pub blocks: usize,
    /// Bytes per block.
    pub block_bytes: usize,
    /// Scheduler read-ahead depth.
    pub io_depth: usize,
    /// Calibrated checksum passes per block.
    pub compute_passes: usize,
    /// Reads served from prefetched data in the scheduled arm.
    pub prefetch_hits: u64,
    /// Reads that went cold to the backend in the scheduled arm.
    pub prefetch_misses: u64,
}

impl IoOverlapResult {
    /// sync / overlapped — how much I/O latency the scheduler hid.
    pub fn speedup(&self) -> f64 {
        self.sync.as_secs_f64() / self.overlapped.as_secs_f64()
    }

    /// Fraction of scheduled-arm reads served from prefetch.
    pub fn hit_rate(&self) -> f64 {
        let total = self.prefetch_hits + self.prefetch_misses;
        if total == 0 {
            return 0.0;
        }
        self.prefetch_hits as f64 / total as f64
    }
}

/// The identical loop body both arms run: stream `in` block by block,
/// checksum it, write it to `out`, and flush at the end (the pass-end
/// barrier that also surfaces any deferred write-behind error).
fn stream_loop(
    disk: &dyn Disk,
    blocks: usize,
    block_bytes: usize,
    passes: usize,
) -> Result<Duration, SortError> {
    let mut buf = vec![0u8; block_bytes];
    let t0 = Instant::now();
    for b in 0..blocks {
        disk.read_at("in", (b * block_bytes) as u64, &mut buf)?;
        compute(&mut buf, passes);
        disk.write_at("out", (b * block_bytes) as u64, &buf)?;
    }
    disk.flush()?;
    Ok(t0.elapsed())
}

/// Measure this filesystem's per-block `read + write` cost: the loop body
/// with zero compute over a handful of blocks, best of three.  The
/// pass-end `flush` is deliberately excluded — it is a one-off tail both
/// arms pay identically, not a per-block cost the scheduler can hide.
fn probe_io_per_block(root: &std::path::Path, block_bytes: usize) -> Result<Duration, SortError> {
    const PROBE_BLOCKS: usize = 16;
    let disk = OsDisk::durable(root.join("probe"))?;
    disk.load("in", input_bytes(PROBE_BLOCKS, block_bytes));
    let mut buf = vec![0u8; block_bytes];
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        for b in 0..PROBE_BLOCKS {
            disk.read_at("in", (b * block_bytes) as u64, &mut buf)?;
            disk.write_at("out", (b * block_bytes) as u64, &buf)?;
        }
        best = best.min(t0.elapsed());
    }
    disk.flush()?;
    Ok(best / PROBE_BLOCKS as u32)
}

fn input_bytes(blocks: usize, block_bytes: usize) -> Vec<u8> {
    (0..blocks * block_bytes)
        .map(|i| (i as u64).wrapping_mul(0x9E37_79B9).to_le_bytes()[0])
        .collect()
}

/// Run the experiment: `blocks` blocks of `block_bytes` through a bare
/// [`OsDisk`] and through an [`IoScheduler`] of depth `io_depth`, with
/// compute calibrated to the measured per-block I/O cost so the scheduler
/// has real latency to hide.
pub fn run_io_overlap(
    blocks: usize,
    block_bytes: usize,
    io_depth: usize,
) -> Result<IoOverlapResult, SortError> {
    let scratch = ScratchDir::new("io-overlap").map_err(|e| SortError::Disk(e.to_string()))?;
    let io_per_block = probe_io_per_block(scratch.path(), block_bytes)?;
    // Par compute with I/O: that is where overlap pays the most and where
    // a serial loop is honestly half-idle.
    let passes = calibrate_passes(block_bytes, io_per_block);
    let input = input_bytes(blocks, block_bytes);

    let sync_disk = OsDisk::durable(scratch.path().join("sync"))?;
    sync_disk.load("in", input.clone());
    let sync = stream_loop(&*sync_disk, blocks, block_bytes, passes)?;

    let registry = MetricsRegistry::new();
    let inner = OsDisk::durable(scratch.path().join("sched"))?;
    inner.load("in", input);
    let sched = IoScheduler::with_metrics(inner as DiskRef, io_depth, &registry, "d0")
        .expect("io scheduler depth");
    let overlapped = stream_loop(&*sched, blocks, block_bytes, passes)?;

    // Same input, same compute: the two output files must be identical, or
    // the timing comparison is meaningless.
    let a = sync_disk.snapshot("out");
    let b = sched.snapshot("out");
    if a != b || a.is_none() {
        return Err(SortError::Disk(
            "scheduled and synchronous runs produced different output".into(),
        ));
    }

    let snap = registry.snapshot();
    Ok(IoOverlapResult {
        sync,
        overlapped,
        blocks,
        block_bytes,
        io_depth,
        compute_passes: passes,
        prefetch_hits: snap.counter("disk/d0/prefetch_hit").unwrap_or(0),
        prefetch_misses: snap.counter("disk/d0/prefetch_miss").unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_arms_agree_and_report_metrics() {
        // Toy scale: correctness of the harness, not a perf claim.
        let res = run_io_overlap(12, 16 << 10, 2).unwrap();
        assert_eq!(res.blocks, 12);
        assert!(res.sync > Duration::ZERO);
        assert!(res.overlapped > Duration::ZERO);
        assert_eq!(res.prefetch_hits + res.prefetch_misses, 12);
        assert!(res.compute_passes >= 1);
    }
}
