//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p fg-bench --release --bin experiments -- all
//! cargo run -p fg-bench --release --bin experiments -- fig8a [--quick]
//! cargo run -p fg-bench --release --bin experiments -- all --json-out out/
//! ```
//!
//! Subcommands (see DESIGN.md's experiment index):
//! `fig8a`, `fig8b`, `ratio-table` (T1), `splitter-balance` (T2),
//! `io-volume` (T3), `unbalanced` (T4), `unbalanced-comm` (the observed
//! skewed scatter of Figure 4: per-rank telemetry folded into a cluster
//! report whose diagnosis must name rank 0 as the hot receiver),
//! `ablation-linear` (A1),
//! `ablation-virtual` (A2), `ablation-overlap` (A3), `buffer-sweep` (A4),
//! `ablation-passes` (A5), `ablation-readahead` (A6), `workers-scaling`
//! (csort's farmed sort stages across replica counts; `--workers N` runs a
//! single count, e.g. for gating a farmed run against a serial baseline),
//! `io-overlap` (the out-of-core acceptance run: the I/O scheduler vs
//! synchronous `OsDisk` syscalls on real files), `autotune-convergence`
//! (the closed-loop controller started mis-configured must converge to the
//! hand-tuned operating point; `--hand-tuned` runs the open-loop reference
//! arm instead, e.g. to record a gate baseline), `kernel-bench` (the sort
//! and merge kernels: radix vs comparison, batched vs scalar merge —
//! best-of-N timings sized for the CI smoke gate), `queue-bench` (the
//! lock-free MPMC ring vs the mutex deque under the contended farm and
//! recycle traffic shapes; CI gates lock-free ≥1.2× at 4×4 on runners
//! with 4+ cores), `resource-profile` (R1: the resource profiler's own
//! overhead — a base csort arm vs one carrying registry + ledger +
//! profiler, best-of-N, with the profiled arm's full resource report in
//! the artifact; CI gates overhead < 2%), `all`.
//!
//! `--bench-out <file>` additionally flattens every produced artifact's
//! `_s` timing leaves into one normalized benchmark JSON (flat
//! `<artifact>.<path>` keys, seconds as values) — the repo's committed
//! `BENCH_fgsort.json` is generated this way.
//!
//! `--json-out <dir>` writes one machine-readable JSON artifact per
//! experiment into `<dir>`.  Re-running into the same directory overwrites
//! by default; `--json-out-suffix <tag>` names artifacts
//! `<name>-<tag>.json` instead (pass `time` for a timestamp) so successive
//! runs coexist.  The fig8 runs are then observed: dsort runs
//! with span tracing and a metrics registry attached, and each cell's
//! artifact embeds node 0's full per-pass FG reports (stage stats, queue
//! depths, and the run's comm and disk metrics).

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use fg_bench::gate::{compare, GateCfg, Regression};
use fg_bench::{
    run_buffer_sweep, run_fig8_panel, run_fig8_panel_observed_with, run_io_volume,
    run_linear_ablation, run_splitter_balance, run_unbalanced, run_virtual_ablation, Fig8Cell,
    Scale,
};
use fg_core::{Json, MetricsRegistry, Sampler, TelemetryServer};
use fg_pdm::DiskCfg;
use fg_sort::record::RecordFormat;

fn secs(d: Duration) -> String {
    format!("{:7.3}", d.as_secs_f64())
}

fn jobj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn jsecs(d: Duration) -> Json {
    Json::Num(d.as_secs_f64())
}

/// Where `--json-out` artifacts go and where `--baseline` artifacts come
/// from; every produced artifact funnels through [`ArtifactSink::write`],
/// which (when gating) also diffs it against the saved baseline.
struct ArtifactSink {
    dir: Option<PathBuf>,
    /// Appended to artifact file stems as `<name>-<suffix>.json`, so
    /// repeat runs into one directory don't silently clobber each other.
    suffix: Option<String>,
    baseline: Option<PathBuf>,
    gate: GateCfg,
    regressions: RefCell<Vec<Regression>>,
    compared: RefCell<usize>,
    /// With `--bench-out <file>`, every produced artifact's `_s` timing
    /// leaves are also flattened into one normalized benchmark file
    /// (written by [`ArtifactSink::finish_bench`]).
    bench_out: Option<PathBuf>,
    bench_rows: RefCell<Vec<(String, f64)>>,
}

impl ArtifactSink {
    fn active(&self) -> bool {
        self.dir.is_some() || self.baseline.is_some()
    }

    fn write(&self, name: &str, value: Json) {
        if let Some(dir) = &self.dir {
            let stem = match &self.suffix {
                Some(s) => format!("{name}-{s}"),
                None => name.to_string(),
            };
            let path = dir.join(format!("{stem}.json"));
            let clobbered = path.exists();
            if let Err(e) = std::fs::write(&path, value.to_string()) {
                eprintln!("error: failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("wrote {}", path.display());
            // Warnings go to stderr: stdout may be piped into a JSON
            // consumer and must carry only the advertised output.
            if clobbered {
                eprintln!(
                    "warning: {} overwrote a previous run; use --json-out-suffix to keep both",
                    path.display()
                );
            }
        }
        if let Some(base) = self.baseline_path(name) {
            self.gate_against(name, &base, &value);
        }
        if self.bench_out.is_some() {
            self.bench_rows
                .borrow_mut()
                .extend(fg_bench::gate::flatten_timings(name, &value));
        }
    }

    /// Write the flat `--bench-out` benchmark file: one JSON object whose
    /// keys are `<artifact>.<path>` and whose values are seconds.
    fn finish_bench(&self) {
        let Some(path) = &self.bench_out else { return };
        let rows = self.bench_rows.borrow();
        let doc = Json::Obj(
            rows.iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        if let Err(e) = std::fs::write(path, doc.to_string()) {
            eprintln!("error: failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("bench: wrote {} ({} timings)", path.display(), rows.len());
    }

    /// Resolve the baseline artifact for `name`: `<dir>/<name>.json` when
    /// `--baseline` names a directory, or the file itself when it names a
    /// single artifact whose stem matches.
    fn baseline_path(&self, name: &str) -> Option<PathBuf> {
        let base = self.baseline.as_ref()?;
        if base.is_dir() {
            Some(base.join(format!("{name}.json")))
        } else if base.file_stem().is_some_and(|s| s == name) {
            Some(base.clone())
        } else {
            None
        }
    }

    fn gate_against(&self, name: &str, path: &PathBuf, current: &Json) {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(_) => {
                eprintln!("gate: no baseline for {name} ({}), skipped", path.display());
                return;
            }
        };
        let baseline = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: baseline {} is not valid JSON: {e}", path.display());
                std::process::exit(1);
            }
        };
        let regs = compare(name, &baseline, current, &self.gate);
        *self.compared.borrow_mut() += 1;
        for r in &regs {
            println!("gate: REGRESSION {r}");
        }
        if regs.is_empty() {
            println!("gate: {name} ok");
        }
        self.regressions.borrow_mut().extend(regs);
    }

    /// Print the gate verdict; `Err` means at least one regression (or no
    /// artifact was ever compared, which would make a green gate vacuous).
    fn finish_gate(&self) -> Result<(), ()> {
        if self.baseline.is_none() {
            return Ok(());
        }
        let regs = self.regressions.borrow();
        let compared = *self.compared.borrow();
        if compared == 0 {
            eprintln!("gate: FAIL — no artifact matched the baseline");
            return Err(());
        }
        if regs.is_empty() {
            println!(
                "gate: PASS — {compared} artifact(s) within {:.0}% + {:.0}ms of baseline",
                100.0 * self.gate.rel_tolerance,
                1000.0 * self.gate.abs_floor_s
            );
            Ok(())
        } else {
            eprintln!("gate: FAIL — {} regression(s)", regs.len());
            Err(())
        }
    }
}

fn fig8_to_json(panel: &[Fig8Cell]) -> Json {
    Json::Arr(
        panel
            .iter()
            .map(|cell| {
                let mut m = vec![
                    ("dist", Json::from(cell.dist.label())),
                    (
                        "dsort",
                        jobj(vec![
                            ("sampling_s", jsecs(cell.dsort.sampling)),
                            ("pass1_s", jsecs(cell.dsort.pass1)),
                            ("pass2_s", jsecs(cell.dsort.pass2)),
                            ("total_s", jsecs(cell.dsort.total())),
                        ]),
                    ),
                    (
                        "csort",
                        jobj(vec![
                            ("pass1_s", jsecs(cell.csort.pass[0])),
                            ("pass2_s", jsecs(cell.csort.pass[1])),
                            ("pass3_s", jsecs(cell.csort.pass[2])),
                            ("total_s", jsecs(cell.csort.total)),
                        ]),
                    ),
                    ("ratio", Json::Num(cell.ratio())),
                ];
                if let Some(obs) = &cell.observed {
                    m.push(("pass1_report", obs.pass1.to_json_value()));
                    m.push(("pass2_report", obs.pass2.to_json_value()));
                }
                jobj(m)
            })
            .collect(),
    )
}

fn print_fig8(panel: &[Fig8Cell], title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:<12} | {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7} | {:>7}",
        "distribution", "d.samp", "d.p1", "d.p2", "dsort", "c.p1", "c.p2", "c.p3", "csort", "d/c %"
    );
    println!("{}", "-".repeat(100));
    for cell in panel {
        let d = &cell.dsort;
        let c = &cell.csort;
        println!(
            "{:<12} | {} {} {} {} | {} {} {} {} | {:6.2}%",
            cell.dist.label(),
            secs(d.sampling),
            secs(d.pass1),
            secs(d.pass2),
            secs(d.total()),
            secs(c.pass[0]),
            secs(c.pass[1]),
            secs(c.pass[2]),
            secs(c.total),
            100.0 * cell.ratio(),
        );
    }
}

/// Remove `--flag <value>` from `args`, returning the value.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs an argument");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_out = take_value_flag(&mut args, "--json-out").map(PathBuf::from);
    // `--json-out-suffix time` expands to the unix timestamp, giving each
    // run a distinct artifact set without inventing a name.
    let json_out_suffix = take_value_flag(&mut args, "--json-out-suffix").map(|s| {
        if s == "time" {
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            format!("{now}")
        } else {
            s
        }
    });
    let baseline = take_value_flag(&mut args, "--baseline").map(PathBuf::from);
    let bench_out = take_value_flag(&mut args, "--bench-out").map(PathBuf::from);
    let gate_tolerance = take_value_flag(&mut args, "--gate-tolerance").map(|v| {
        v.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("--gate-tolerance needs a fraction, e.g. 0.30");
            std::process::exit(2);
        })
    });
    let telemetry_addr = take_value_flag(&mut args, "--telemetry");
    let workers_flag = take_value_flag(&mut args, "--workers").map(|v| {
        v.parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                eprintln!("--workers needs a positive integer");
                std::process::exit(2);
            })
    });
    if let Some(dir) = &json_out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: failed to create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    if let Some(base) = &baseline {
        if !base.exists() {
            eprintln!("error: baseline {} does not exist", base.display());
            std::process::exit(2);
        }
    }
    let mut gate = GateCfg::default();
    if let Some(tol) = gate_tolerance {
        gate.rel_tolerance = tol;
    }
    let sink = ArtifactSink {
        dir: json_out,
        suffix: json_out_suffix,
        baseline,
        gate,
        regressions: RefCell::new(Vec::new()),
        compared: RefCell::new(0),
        bench_out,
        bench_rows: RefCell::new(Vec::new()),
    };

    // With --telemetry, the fig8 dsort runs publish into this registry and
    // a background sampler + HTTP endpoint expose it live (GET /metrics,
    // GET /report).
    let registry = Arc::new(MetricsRegistry::new());
    let telemetry = telemetry_addr.map(|addr| {
        let server = TelemetryServer::bind(&addr, Arc::clone(&registry)).unwrap_or_else(|e| {
            eprintln!("error: failed to bind telemetry server on {addr}: {e}");
            std::process::exit(1);
        });
        println!(
            "telemetry: serving /metrics and /report on http://{}",
            server.local_addr()
        );
        let sampler = Sampler::start(Arc::clone(&registry), Default::default());
        (server, sampler)
    });
    let quick = args.iter().any(|a| a == "--quick");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper_scaled()
    };
    println!(
        "scale: {} nodes x {} KiB/node{}",
        scale.nodes,
        scale.bytes_per_node >> 10,
        if quick { " (quick)" } else { "" }
    );

    let run_all = cmd == "all";
    let mut fig8a: Option<Vec<Fig8Cell>> = None;
    let mut fig8b: Option<Vec<Fig8Cell>> = None;

    // With --json-out or --baseline, fig8 runs are observed (tracing +
    // metrics) so artifacts carry full FG reports and gate runs match the
    // baseline's instrumentation overhead; --telemetry additionally makes
    // the shared registry live on the HTTP endpoint.
    let observe = sink.active() || telemetry.is_some();
    let panel_for = |record| {
        if observe {
            run_fig8_panel_observed_with(scale, record, &registry)
        } else {
            run_fig8_panel(scale, record)
        }
    };
    if run_all || cmd == "fig8a" || cmd == "ratio-table" {
        let panel = panel_for(RecordFormat::REC16).expect("fig8a");
        print_fig8(
            &panel,
            "Figure 8(a): 16-byte records, total & per-pass times (s)",
        );
        sink.write("fig8a", fig8_to_json(&panel));
        fig8a = Some(panel);
    }
    if run_all || cmd == "fig8b" || cmd == "ratio-table" {
        let panel = panel_for(RecordFormat::REC64).expect("fig8b");
        print_fig8(
            &panel,
            "Figure 8(b): 64-byte records, total & per-pass times (s)",
        );
        sink.write("fig8b", fig8_to_json(&panel));
        fig8b = Some(panel);
    }
    if run_all || cmd == "ratio-table" {
        println!("\n=== T1: dsort/csort total-time ratios (paper: 74.26%-85.06%) ===");
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        let mut ratio_rows = Vec::new();
        for (name, panel) in [("16-byte", &fig8a), ("64-byte", &fig8b)] {
            if let Some(panel) = panel {
                for cell in panel {
                    let r = 100.0 * cell.ratio();
                    lo = lo.min(r);
                    hi = hi.max(r);
                    println!("{name:<8} {:<12} {r:6.2}%", cell.dist.label());
                    ratio_rows.push(jobj(vec![
                        ("record", Json::from(name)),
                        ("dist", Json::from(cell.dist.label())),
                        ("ratio_percent", Json::Num(r)),
                    ]));
                }
            }
        }
        if lo <= hi {
            println!("range: {lo:.2}% - {hi:.2}%");
        }
        sink.write("ratio-table", Json::Arr(ratio_rows));
    }
    if run_all || cmd == "splitter-balance" {
        println!("\n=== T2: splitter balance, max partition / average (paper: <= 1.10) ===");
        let oversamples = if quick { vec![4, 32] } else { vec![4, 16, 64] };
        let rows = run_splitter_balance(scale, &oversamples).expect("splitter-balance");
        println!(
            "{:<12} {:>10} {:>12}",
            "distribution", "oversample", "max/avg"
        );
        for row in &rows {
            println!(
                "{:<12} {:>10} {:>11.3}x",
                row.dist.label(),
                row.oversample,
                row.max_over_avg
            );
        }
        sink.write(
            "splitter-balance",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        jobj(vec![
                            ("dist", Json::from(r.dist.label())),
                            ("oversample", Json::from(r.oversample)),
                            ("max_over_avg", Json::Num(r.max_over_avg)),
                        ])
                    })
                    .collect(),
            ),
        );
    }
    if run_all || cmd == "io-volume" {
        println!("\n=== T3: data volume (paper: csort does ~50% more disk I/O) ===");
        let rows = run_io_volume(scale).expect("io-volume");
        println!(
            "{:<8} {:>12} {:>12} {:>12}",
            "program", "read MiB", "write MiB", "net MiB"
        );
        let mib = |b: u64| b as f64 / (1 << 20) as f64;
        for r in &rows {
            println!(
                "{:<8} {:>12.2} {:>12.2} {:>12.2}",
                r.program,
                mib(r.bytes_read),
                mib(r.bytes_written),
                mib(r.net_bytes)
            );
        }
        if rows.len() == 2 {
            let dio = (rows[0].bytes_read + rows[0].bytes_written) as f64;
            let cio = (rows[1].bytes_read + rows[1].bytes_written) as f64;
            println!(
                "csort/dsort disk-I/O ratio: {:.2}x (paper: ~1.5x)",
                cio / dio
            );
        }
        sink.write(
            "io-volume",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        jobj(vec![
                            ("program", Json::from(r.program)),
                            ("bytes_read", Json::from(r.bytes_read)),
                            ("bytes_written", Json::from(r.bytes_written)),
                            ("net_bytes", Json::from(r.net_bytes)),
                        ])
                    })
                    .collect(),
            ),
        );
    }
    if run_all || cmd == "unbalanced" {
        println!("\n=== T4: adversarial unbalanced-communication inputs ===");
        let rows = run_unbalanced(scale).expect("unbalanced");
        println!(
            "{:<12} {:>9} {:>9} {:>8}",
            "input", "dsort s", "csort s", "d/c %"
        );
        for r in &rows {
            println!(
                "{:<12} {:>9.3} {:>9.3} {:>7.2}%",
                r.label,
                r.dsort.total().as_secs_f64(),
                r.csort.total.as_secs_f64(),
                100.0 * r.dsort.total().as_secs_f64() / r.csort.total.as_secs_f64()
            );
        }
        sink.write(
            "unbalanced",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        jobj(vec![
                            ("input", Json::from(r.label.as_str())),
                            ("dsort_s", jsecs(r.dsort.total())),
                            ("csort_s", jsecs(r.csort.total)),
                        ])
                    })
                    .collect(),
            ),
        );
    }
    if run_all || cmd == "unbalanced-comm" {
        println!("\n=== Cluster observability: skewed scatter (70% of traffic to rank 0) ===");
        let (nodes, blocks) = if quick { (4, 16) } else { (4, 32) };
        let res = fg_bench::unbalanced_comm::run_unbalanced_comm(nodes, blocks, None)
            .expect("unbalanced-comm");
        println!("blocks received per node (sent {blocks} each):");
        for (rank, b) in res.received.iter().enumerate() {
            println!(
                "  node {rank}: {b:>3} blocks  {}",
                "#".repeat(*b as usize / 2)
            );
        }
        println!("\n{}", res.report.render());
        println!("{}", res.diagnosis.render());
        // `hot_rank` is the machine-checked acceptance criterion: the
        // comm-aware diagnosis must name rank 0 from telemetry alone.
        sink.write(
            "unbalanced-comm",
            jobj(vec![
                ("nodes", Json::from(nodes)),
                ("blocks_per_node", Json::from(blocks)),
                (
                    "received",
                    Json::Arr(res.received.iter().map(|&b| Json::from(b)).collect()),
                ),
                (
                    "hot_rank",
                    res.diagnosis.hot_rank.map(Json::from).unwrap_or(Json::Null),
                ),
                ("cluster", res.report.to_json_value()),
                ("diagnosis", res.diagnosis.to_json_value()),
            ]),
        );
    }
    if run_all || cmd == "ablation-linear" {
        println!("\n=== A1: dsort (multiple pipelines) vs dsort-linear (single pipelines) ===");
        let rows = run_linear_ablation(scale).expect("ablation-linear");
        println!(
            "{:<12} {:>9} {:>9} {:>9}",
            "input", "dsort s", "linear s", "speedup"
        );
        for r in &rows {
            println!(
                "{:<12} {:>9.3} {:>9.3} {:>8.2}x",
                r.label,
                r.dsort.total().as_secs_f64(),
                r.linear.total().as_secs_f64(),
                r.linear.total().as_secs_f64() / r.dsort.total().as_secs_f64()
            );
        }
        sink.write(
            "ablation-linear",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        jobj(vec![
                            ("input", Json::from(r.label.as_str())),
                            ("dsort_s", jsecs(r.dsort.total())),
                            ("linear_s", jsecs(r.linear.total())),
                        ])
                    })
                    .collect(),
            ),
        );
    }
    if run_all || cmd == "ablation-virtual" {
        println!("\n=== A2: virtual stages keep thread counts flat ===");
        let run_kib = if quick {
            vec![64, 16]
        } else {
            vec![256, 64, 16]
        };
        let rows = run_virtual_ablation(scale, &run_kib).expect("ablation-virtual");
        println!(
            "{:>12} {:>14} {:>12} {:>11} {:>10}",
            "runs/node", "thr(virtual)", "thr(plain)", "t(virt) s", "t(plain) s"
        );
        for r in &rows {
            println!(
                "{:>12} {:>14} {:>12} {:>11.3} {:>10.3}",
                r.runs_per_node,
                r.threads_virtual,
                r.threads_plain,
                r.time_virtual.as_secs_f64(),
                r.time_plain.as_secs_f64()
            );
        }
        sink.write(
            "ablation-virtual",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        jobj(vec![
                            ("runs_per_node", Json::from(r.runs_per_node)),
                            ("threads_virtual", Json::from(r.threads_virtual)),
                            ("threads_plain", Json::from(r.threads_plain)),
                            ("time_virtual_s", jsecs(r.time_virtual)),
                            ("time_plain_s", jsecs(r.time_plain)),
                        ])
                    })
                    .collect(),
            ),
        );
    }
    if run_all || cmd == "ablation-overlap" {
        println!("\n=== A3: pipeline overlap vs serial execution (single node) ===");
        let disk = DiskCfg::new(Duration::from_micros(500), 200.0 * 1024.0 * 1024.0);
        let (blocks, passes) = if quick { (64, 12) } else { (256, 12) };
        let res = fg_bench::overlap::run_overlap(blocks, 64 << 10, disk, passes)
            .expect("ablation-overlap");
        println!(
            "blocks: {}   pipelined: {:.3}s   serial: {:.3}s   speedup: {:.2}x",
            res.blocks,
            res.pipelined.as_secs_f64(),
            res.serial.as_secs_f64(),
            res.speedup()
        );
        sink.write(
            "ablation-overlap",
            jobj(vec![
                ("blocks", Json::from(res.blocks)),
                ("pipelined_s", jsecs(res.pipelined)),
                ("serial_s", jsecs(res.serial)),
                ("speedup", Json::Num(res.speedup())),
            ]),
        );
    }
    if run_all || cmd == "ablation-passes" {
        println!("\n=== A5: three-pass vs four-pass columnsort (the coalescing win) ===");
        let row = fg_bench::run_csort_pass_ablation(scale).expect("ablation-passes");
        println!(
            "csort3: {:.3}s   csort4: {:.3}s   time ratio {:.2}x   I/O ratio {:.2}x (expected ~1.33x)",
            row.csort3_total.as_secs_f64(),
            row.csort4_total.as_secs_f64(),
            row.ratio,
            row.io_ratio
        );
        sink.write(
            "ablation-passes",
            jobj(vec![
                ("csort3_s", jsecs(row.csort3_total)),
                ("csort4_s", jsecs(row.csort4_total)),
                ("time_ratio", Json::Num(row.ratio)),
                ("io_ratio", Json::Num(row.io_ratio)),
            ]),
        );
    }
    if run_all || cmd == "ablation-readahead" {
        println!("\n=== A6: read-ahead depth on dsort's pass-2 run pipelines ===");
        let depths = if quick { vec![1, 2] } else { vec![1, 2, 4, 8] };
        let rows = fg_bench::run_readahead_ablation(scale, &depths).expect("ablation-readahead");
        println!("{:>6} {:>10} {:>9}", "depth", "pass2 s", "total s");
        for r in &rows {
            println!(
                "{:>6} {:>10.3} {:>9.3}",
                r.depth,
                r.pass2.as_secs_f64(),
                r.total.as_secs_f64()
            );
        }
        sink.write(
            "ablation-readahead",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        jobj(vec![
                            ("depth", Json::from(r.depth)),
                            ("pass2_s", jsecs(r.pass2)),
                            ("total_s", jsecs(r.total)),
                        ])
                    })
                    .collect(),
            ),
        );
    }
    if run_all || cmd == "buffer-sweep" {
        println!("\n=== A4: buffer-size sweep ===");
        let sizes = if quick {
            vec![16, 64]
        } else {
            vec![16, 32, 64, 128, 256]
        };
        let rows = run_buffer_sweep(scale, &sizes).expect("buffer-sweep");
        println!("{:>10} {:>9} {:>9}", "block KiB", "dsort s", "csort s");
        for r in &rows {
            println!(
                "{:>10} {:>9.3} {:>9.3}",
                r.block_bytes >> 10,
                r.dsort_total.as_secs_f64(),
                r.csort_total.as_secs_f64()
            );
        }
        sink.write(
            "buffer-sweep",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        jobj(vec![
                            ("block_bytes", Json::from(r.block_bytes)),
                            ("dsort_s", jsecs(r.dsort_total)),
                            ("csort_s", jsecs(r.csort_total)),
                        ])
                    })
                    .collect(),
            ),
        );
    }
    if run_all || cmd == "workers-scaling" {
        println!("\n=== Workers scaling: csort's farmed sort stages (zero-cost I/O) ===");
        let counts: Vec<usize> = match workers_flag {
            Some(n) => vec![n],
            None if quick => vec![1, 2],
            None => vec![1, 2, 4],
        };
        let (nodes, bytes) = if quick { (2, 256 << 10) } else { (2, 4 << 20) };
        println!(
            "{nodes} nodes x {} KiB/node, workers {counts:?}",
            bytes >> 10
        );
        let rows = fg_bench::run_workers_scaling(nodes, bytes, &counts).expect("workers-scaling");
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "workers", "pass1 s", "pass2 s", "pass3 s", "total s", "speedup"
        );
        let serial = rows.first().map(|r| r.total);
        for r in &rows {
            let speedup = serial
                .map(|s| s.as_secs_f64() / r.total.as_secs_f64())
                .unwrap_or(1.0);
            println!(
                "{:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>8.2}x",
                r.workers,
                r.pass[0].as_secs_f64(),
                r.pass[1].as_secs_f64(),
                r.pass[2].as_secs_f64(),
                r.total.as_secs_f64(),
                speedup
            );
        }
        sink.write(
            "workers-scaling",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        jobj(vec![
                            ("workers", Json::from(r.workers)),
                            ("pass1_s", jsecs(r.pass[0])),
                            ("pass2_s", jsecs(r.pass[1])),
                            ("pass3_s", jsecs(r.pass[2])),
                            ("total_s", jsecs(r.total)),
                        ])
                    })
                    .collect(),
            ),
        );
    }
    if run_all || cmd == "io-overlap" {
        println!("\n=== Out-of-core: I/O scheduler vs synchronous OsDisk (real files) ===");
        let (blocks, block_bytes, depth) = if quick {
            (64, 64 << 10, 4)
        } else {
            (512, 256 << 10, 4)
        };
        let res =
            fg_bench::io_overlap::run_io_overlap(blocks, block_bytes, depth).expect("io-overlap");
        println!(
            "{} blocks x {} KiB, depth {}: sync {:.3}s   overlapped {:.3}s   speedup {:.2}x   \
             prefetch {:.0}% hit ({} hits, {} misses)",
            res.blocks,
            res.block_bytes >> 10,
            res.io_depth,
            res.sync.as_secs_f64(),
            res.overlapped.as_secs_f64(),
            res.speedup(),
            100.0 * res.hit_rate(),
            res.prefetch_hits,
            res.prefetch_misses,
        );
        sink.write(
            "io-overlap",
            jobj(vec![
                ("blocks", Json::from(res.blocks)),
                ("block_bytes", Json::from(res.block_bytes)),
                ("io_depth", Json::from(res.io_depth)),
                ("compute_passes", Json::from(res.compute_passes)),
                ("sync_s", jsecs(res.sync)),
                ("overlapped_s", jsecs(res.overlapped)),
                ("speedup", Json::Num(res.speedup())),
                ("prefetch_hits", Json::from(res.prefetch_hits)),
                ("prefetch_misses", Json::from(res.prefetch_misses)),
            ]),
        );
    }
    if run_all || cmd == "autotune-convergence" {
        let hand_tuned = args.iter().any(|a| a == "--hand-tuned");
        println!("\n=== Autotune: closed-loop controller vs hand-tuned operating point ===");
        let shape = fg_bench::autotune::AutotuneShape::new(quick);
        let res = if hand_tuned {
            fg_bench::autotune::run_arm(shape, shape.width, shape.tuned_depth, false)
        } else {
            fg_bench::autotune::run_arm(shape, 1, 1, true)
        }
        .expect("autotune-convergence");
        let mode = if hand_tuned {
            "hand-tuned"
        } else {
            "autotuned"
        };
        println!(
            "{} rounds ({mode}): total {:.3}s   steady-state {:.3}s   \
             final {} workers, read-ahead depth {}",
            res.rounds,
            res.total.as_secs_f64(),
            res.steady_state.as_secs_f64(),
            res.final_workers,
            res.final_depth,
        );
        // `steady_state_s` is the shared gated key: the autotuned arm's
        // landing point vs the hand-tuned arm's whole run.  The wall times
        // keep arm-specific names so the convergence tax is visible in the
        // artifact without tripping the gate.
        let mut members = vec![
            ("mode", Json::from(mode)),
            ("rounds", Json::from(res.rounds)),
            ("steady_state_s", jsecs(res.steady_state)),
            ("final_workers", Json::from(res.final_workers)),
            ("final_io_depth", Json::from(res.final_depth)),
            (
                if hand_tuned {
                    "hand_total_s"
                } else {
                    "autotuned_total_s"
                },
                jsecs(res.total),
            ),
        ];
        if let Some(log) = &res.log {
            println!(
                "controller: {} ticks, {} actuations, {} decisions audited",
                log.ticks,
                log.actuations,
                log.decisions.len()
            );
            for d in &log.decisions {
                println!("  [{}] {} => {}", d.seq, d.verdict, d.action);
            }
            members.push(("controller", log.to_json_value()));
        }
        sink.write("autotune-convergence", jobj(members));
    }
    if run_all || cmd == "kernel-bench" {
        println!("\n=== Sort/merge kernels: radix vs comparison, batched vs scalar merge ===");
        let res = fg_bench::kernel_bench::run_kernel_bench(quick);
        println!(
            "sort {} records (uniform REC16): radix {:.3}s   comparison {:.3}s   speedup {:.2}x",
            res.records,
            res.radix.as_secs_f64(),
            res.comparison.as_secs_f64(),
            res.sort_speedup(),
        );
        for cell in &res.merge {
            println!(
                "merge k={:3} x {:6} records/lane: scalar {:.3}s   batched {:.3}s   speedup {:.2}x",
                cell.k,
                cell.per_lane,
                cell.scalar.as_secs_f64(),
                cell.batched.as_secs_f64(),
                cell.speedup(),
            );
        }
        sink.write(
            "kernel-bench",
            jobj(vec![
                ("records", Json::from(res.records)),
                ("radix_s", jsecs(res.radix)),
                ("comparison_s", jsecs(res.comparison)),
                ("sort_speedup", Json::Num(res.sort_speedup())),
                (
                    "merge",
                    Json::Arr(
                        res.merge
                            .iter()
                            .map(|cell| {
                                jobj(vec![
                                    ("k", Json::from(cell.k)),
                                    ("per_lane", Json::from(cell.per_lane)),
                                    ("scalar_s", jsecs(cell.scalar)),
                                    ("batched_s", jsecs(cell.batched)),
                                    ("speedup", Json::Num(cell.speedup())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        );
    }
    if run_all || cmd == "queue-bench" {
        println!("\n=== Queue flavors: lock-free MPMC ring vs mutex deque ===");
        let res = fg_bench::queue_bench::run_queue_bench(quick);
        for c in &res.contended {
            println!(
                "contended {}p x {}c, {:6} items: mutex {:8.3} ms   lockfree {:8.3} ms   speedup {:.2}x",
                c.producers,
                c.consumers,
                c.items,
                c.mutex.as_secs_f64() * 1e3,
                c.lock_free.as_secs_f64() * 1e3,
                c.speedup(),
            );
        }
        let c = &res.recycle;
        println!(
            "recycle   {}p x {}c, {:6} items: mutex {:8.3} ms   lockfree {:8.3} ms   speedup {:.2}x",
            c.producers,
            c.consumers,
            c.items,
            c.mutex.as_secs_f64() * 1e3,
            c.lock_free.as_secs_f64() * 1e3,
            c.speedup(),
        );
        if !res.gate_eligible() {
            println!(
                "note: {}-core host: the 4x4 cell's 8 threads mostly take turns \
                 on the scheduler, so the lock-free speedup is not gateable here",
                res.cores
            );
        }
        let cell_json = |c: &fg_bench::queue_bench::QueueCell| {
            jobj(vec![
                ("producers", Json::from(c.producers)),
                ("consumers", Json::from(c.consumers)),
                ("items", Json::from(c.items)),
                ("mutex_s", jsecs(c.mutex)),
                ("lockfree_s", jsecs(c.lock_free)),
                ("speedup", Json::Num(c.speedup())),
            ])
        };
        sink.write(
            "queue-bench",
            jobj(vec![
                ("cores", Json::from(res.cores)),
                ("gate_eligible", Json::Bool(res.gate_eligible())),
                (
                    "gated_speedup",
                    Json::Num(res.gated_speedup().unwrap_or(0.0)),
                ),
                (
                    "contended",
                    Json::Arr(res.contended.iter().map(cell_json).collect()),
                ),
                ("recycle", cell_json(&res.recycle)),
            ]),
        );
    }
    if run_all || cmd == "resource-profile" {
        println!("\n=== R1: resource profiler overhead (base vs profiled, best-of-N) ===");
        let res =
            fg_bench::resource_profile::run_resource_profile(quick).expect("resource-profile");
        println!(
            "{} nodes x {} KiB/node, best of {}: base {:.3}s   profiled {:.3}s   overhead {:+.2}%",
            res.nodes,
            res.bytes_per_node >> 10,
            res.reps,
            res.base.as_secs_f64(),
            res.profiled.as_secs_f64(),
            100.0 * res.overhead_frac(),
        );
        println!("{}", res.resources.render());
        sink.write(
            "resource-profile",
            jobj(vec![
                ("nodes", Json::from(res.nodes)),
                ("bytes_per_node", Json::from(res.bytes_per_node)),
                ("reps", Json::from(res.reps)),
                ("base_s", jsecs(res.base)),
                ("profiled_s", jsecs(res.profiled)),
                ("overhead_frac", Json::Num(res.overhead_frac())),
                ("resources", res.resources.to_json_value()),
            ]),
        );
    }
    if let Some((server, sampler)) = telemetry {
        let series = sampler.stop();
        println!(
            "telemetry: collected {} samples; endpoint on {} closing",
            series.len(),
            server.local_addr()
        );
    }
    sink.finish_bench();
    let gate_ok = sink.finish_gate().is_ok();
    println!("\ndone.");
    if !gate_ok {
        std::process::exit(1);
    }
}
