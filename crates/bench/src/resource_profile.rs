//! R1: the resource profiler's own cost.
//!
//! Two arms of the same csort run on the simulated backend: a **base** arm
//! with no instrumentation, and a **profiled** arm carrying the full
//! resource stack — metrics registry, memory ledger, and a
//! [`fg_core::ResourceProfiler`] at its default 100 ms cadence.  Each arm
//! is best-of-N (the sampler cost is a floor effect, so min wall time is
//! the honest comparison), and the profiled arm's final
//! [`fg_core::ResourceReport`] rides along in the artifact so CI can
//! assert the attribution is actually populated while it gates the
//! overhead.
//!
//! The acceptance bound is `overhead_frac < 0.02`: the profiler reads two
//! small `/proc` files per registered thread per tick, which at tens of
//! threads and 10 Hz is microseconds of work per second of run.

use std::sync::Arc;
use std::time::Duration;

use fg_core::{MemoryLedger, MetricsRegistry, ResourceProfiler, ResourceReport};
use fg_sort::config::SortConfig;
use fg_sort::csort::run_csort;
use fg_sort::input::provision;
use fg_sort::record::RecordFormat;
use fg_sort::SortError;

/// Both arms of the profiler-overhead experiment.
#[derive(Debug)]
pub struct ResourceProfileResult {
    /// Cluster nodes in each run.
    pub nodes: usize,
    /// Input bytes per node.
    pub bytes_per_node: usize,
    /// Runs per arm (both arms report best-of-N).
    pub reps: usize,
    /// Best wall time with no instrumentation attached.
    pub base: Duration,
    /// Best wall time with registry + ledger + profiler attached.
    pub profiled: Duration,
    /// The resource report captured by the profiled arm's best run.
    pub resources: ResourceReport,
}

impl ResourceProfileResult {
    /// Fractional slowdown of the profiled arm: `profiled/base - 1`.
    /// Negative values (noise) mean the profiler cost is unmeasurable.
    pub fn overhead_frac(&self) -> f64 {
        self.profiled.as_secs_f64() / self.base.as_secs_f64() - 1.0
    }
}

/// Run both arms and return the paired timings.
pub fn run_resource_profile(quick: bool) -> Result<ResourceProfileResult, SortError> {
    let (nodes, bytes_per_node, reps) = if quick {
        (2, 256 << 10, 3)
    } else {
        (4, 1 << 20, 5)
    };
    let cfg = SortConfig::test_default(nodes, bytes_per_node / RecordFormat::REC16.record_bytes);

    let mut base = Duration::MAX;
    for _ in 0..reps {
        let disks = provision(&cfg);
        let r = run_csort(&cfg, &disks)?;
        base = base.min(r.total);
    }

    let mut profiled = Duration::MAX;
    let mut resources = ResourceReport::default();
    for _ in 0..reps {
        let registry = Arc::new(MetricsRegistry::new());
        let ledger = Arc::new(MemoryLedger::new());
        let mut armed = cfg.clone();
        armed.metrics = Some(Arc::clone(&registry));
        armed.ledger = Some(Arc::clone(&ledger));
        let profiler = ResourceProfiler::start_with(
            Arc::clone(&registry),
            Default::default(),
            Some(Arc::clone(&ledger)),
        );
        let disks = provision(&armed);
        let r = run_csort(&armed, &disks)?;
        profiler.stop();
        if r.total < profiled {
            profiled = r.total;
            resources = ResourceReport::from_metrics(&registry.snapshot()).unwrap_or_default();
        }
    }

    Ok(ResourceProfileResult {
        nodes,
        bytes_per_node,
        reps,
        base,
        profiled,
        resources,
    })
}
