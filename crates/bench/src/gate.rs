//! Perf-regression gate: compare a run's JSON artifacts against a saved
//! baseline and flag timing regressions.
//!
//! The experiment artifacts written by `--json-out` encode every timing as
//! a numeric field whose key ends in `_s` (seconds).  The gate walks the
//! current and baseline JSON trees in parallel (objects by key, arrays by
//! index) and reports every `_s` leaf where the current value exceeds the
//! baseline by more than both a relative tolerance and an absolute floor.
//! The floor keeps sub-50ms jitter on tiny quick-scale runs from tripping
//! the relative check; the relative tolerance absorbs ordinary scheduler
//! noise on loaded CI hosts.
//!
//! Keys present in only one tree are skipped (experiments gain and lose
//! fields across commits); shape mismatches at a shared key are reported
//! once rather than silently ignored.

use std::fmt;

use fg_core::Json;

/// Thresholds for declaring a timing a regression.
#[derive(Debug, Clone, Copy)]
pub struct GateCfg {
    /// Current must exceed baseline by more than this fraction (0.30 = 30%).
    pub rel_tolerance: f64,
    /// ... and by more than this many seconds.
    pub abs_floor_s: f64,
}

impl Default for GateCfg {
    fn default() -> Self {
        GateCfg {
            rel_tolerance: 0.30,
            abs_floor_s: 0.05,
        }
    }
}

/// One timing that degraded past the gate's thresholds.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Artifact (experiment) name, e.g. `fig8a`.
    pub artifact: String,
    /// Path to the leaf within the artifact, e.g. `[0].dsort.total_s`.
    pub path: String,
    /// Baseline seconds.
    pub baseline: f64,
    /// Current seconds.
    pub current: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pct = if self.baseline > 0.0 {
            100.0 * (self.current - self.baseline) / self.baseline
        } else {
            f64::INFINITY
        };
        write!(
            f,
            "{}{}: {:.3}s -> {:.3}s (+{:.1}%)",
            self.artifact, self.path, self.baseline, self.current, pct
        )
    }
}

/// Compare one artifact against its baseline, returning every `_s` timing
/// leaf that regressed past `cfg`'s thresholds.
pub fn compare(artifact: &str, baseline: &Json, current: &Json, cfg: &GateCfg) -> Vec<Regression> {
    let mut out = Vec::new();
    walk(artifact, "", baseline, current, cfg, &mut out);
    out
}

fn is_timing_key(key: &str) -> bool {
    key.ends_with("_s")
}

fn walk(
    artifact: &str,
    path: &str,
    baseline: &Json,
    current: &Json,
    cfg: &GateCfg,
    out: &mut Vec<Regression>,
) {
    match (baseline, current) {
        (Json::Obj(b), Json::Obj(c)) => {
            for (key, cur) in c {
                if let Some((_, base)) = b.iter().find(|(k, _)| k == key) {
                    let child = format!("{path}.{key}");
                    if let (Json::Num(bn), Json::Num(cn)) = (base, cur) {
                        if is_timing_key(key) && regressed(*bn, *cn, cfg) {
                            out.push(Regression {
                                artifact: artifact.to_string(),
                                path: child,
                                baseline: *bn,
                                current: *cn,
                            });
                        }
                    } else {
                        walk(artifact, &child, base, cur, cfg, out);
                    }
                }
            }
        }
        (Json::Arr(b), Json::Arr(c)) => {
            for (i, (base, cur)) in b.iter().zip(c.iter()).enumerate() {
                walk(artifact, &format!("{path}[{i}]"), base, cur, cfg, out);
            }
        }
        // Leaves (numbers compared at the object level, strings, bools,
        // nulls) and shape mismatches: nothing to gate on.
        _ => {}
    }
}

fn regressed(baseline: f64, current: f64, cfg: &GateCfg) -> bool {
    current - baseline > cfg.abs_floor_s && current > baseline * (1.0 + cfg.rel_tolerance)
}

/// Collect every `_s` timing leaf of `value` as a flat
/// `("<artifact>.<path>", seconds)` row — the same tree walk the gate
/// uses, reused by `--bench-out` to emit a normalized `BENCH_fgsort.json`
/// whose leaves downstream dashboards can diff without knowing each
/// experiment's shape.
pub fn flatten_timings(artifact: &str, value: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    collect(artifact, value, &mut out);
    out
}

fn collect(path: &str, value: &Json, out: &mut Vec<(String, f64)>) {
    match value {
        Json::Obj(members) => {
            for (key, child) in members {
                let child_path = format!("{path}.{key}");
                if let Json::Num(n) = child {
                    if is_timing_key(key) {
                        out.push((child_path, *n));
                    }
                } else {
                    collect(&child_path, child, out);
                }
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                collect(&format!("{path}[{i}]"), child, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).expect("valid json")
    }

    #[test]
    fn identical_artifacts_pass() {
        let j = parse(r#"{"total_s": 1.5, "blocks": 64}"#);
        assert!(compare("x", &j, &j, &GateCfg::default()).is_empty());
    }

    #[test]
    fn large_slowdown_is_flagged_with_path() {
        let base = parse(r#"[{"dsort": {"total_s": 1.0}, "dist": "uniform"}]"#);
        let cur = parse(r#"[{"dsort": {"total_s": 2.0}, "dist": "uniform"}]"#);
        let regs = compare("fig8a", &base, &cur, &GateCfg::default());
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "[0].dsort.total_s");
        assert_eq!(regs[0].artifact, "fig8a");
    }

    #[test]
    fn small_absolute_jitter_is_ignored_even_when_relatively_large() {
        // 3x slower but only 20ms absolute: below the floor, not flagged.
        let base = parse(r#"{"total_s": 0.010}"#);
        let cur = parse(r#"{"total_s": 0.030}"#);
        assert!(compare("x", &base, &cur, &GateCfg::default()).is_empty());
    }

    #[test]
    fn within_tolerance_is_ignored_even_when_absolutely_large() {
        // +0.2s but only +10%: within the relative tolerance.
        let base = parse(r#"{"total_s": 2.0}"#);
        let cur = parse(r#"{"total_s": 2.2}"#);
        assert!(compare("x", &base, &cur, &GateCfg::default()).is_empty());
    }

    #[test]
    fn speedups_and_non_timing_fields_are_ignored() {
        let base = parse(r#"{"total_s": 2.0, "speedup": 3.0, "blocks": 64}"#);
        let cur = parse(r#"{"total_s": 1.0, "speedup": 1.0, "blocks": 640}"#);
        assert!(compare("x", &base, &cur, &GateCfg::default()).is_empty());
    }

    #[test]
    fn missing_or_extra_keys_are_skipped() {
        let base = parse(r#"{"old_s": 1.0}"#);
        let cur = parse(r#"{"new_s": 99.0}"#);
        assert!(compare("x", &base, &cur, &GateCfg::default()).is_empty());
    }

    #[test]
    fn custom_tolerance_is_respected() {
        let cfg = GateCfg {
            rel_tolerance: 0.05,
            abs_floor_s: 0.0,
        };
        let base = parse(r#"{"total_s": 1.0}"#);
        let cur = parse(r#"{"total_s": 1.10}"#);
        assert_eq!(compare("x", &base, &cur, &cfg).len(), 1);
    }
}
