//! Queue contention smoke benchmark: the lock-free MPMC ring vs the
//! mutex-deque baseline under the farm and recycle traffic shapes.
//!
//! The criterion bench (`benches/queue_throughput.rs`) is the full local
//! grid; this module is the CI-sized cut — one best-of-N wall timing per
//! cell — whose artifact the perf gate consumes (`queue-bench`
//! experiments subcommand).  CI additionally gates the lock-free flavor
//! at ≥1.2× over the mutex flavor on the 4×4 cell, but only on hosts
//! with at least 4 cores: below that the 8 threads of the gated cell
//! mostly take turns on the scheduler (on 2 shared cores the 1.2× bar is
//! intermittently missed even best-of-N), so
//! [`QueueBenchResult::gate_eligible`] lets the job skip with a notice
//! instead of gating noise.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use fg_core::qbench::BenchQueue;

/// Queue capacity, matching a typical pipeline's buffer pool.
const CAP: usize = 8;
/// Payload bytes; small so queue overhead dominates the measurement.
const BUF_BYTES: usize = 64;

/// One producers × consumers cell, timed for both MPMC flavors.
#[derive(Debug)]
pub struct QueueCell {
    /// Producer thread count.
    pub producers: usize,
    /// Consumer thread count.
    pub consumers: usize,
    /// Buffers transferred per timing.
    pub items: usize,
    /// Mutex-deque flavor wall time (best-of-N).
    pub mutex: Duration,
    /// Lock-free ring flavor wall time (best-of-N).
    pub lock_free: Duration,
}

impl QueueCell {
    /// Mutex time over lock-free time — above 1.0 the ring wins.
    pub fn speedup(&self) -> f64 {
        self.mutex.as_secs_f64() / self.lock_free.as_secs_f64()
    }
}

/// Results of one queue-bench run.
#[derive(Debug)]
pub struct QueueBenchResult {
    /// Cores the scheduler grants this process; the CI gate only fires
    /// when this is >= 4.
    pub cores: usize,
    /// Symmetric contended cells (1×1, 2×2, 4×4, 8×8).
    pub contended: Vec<QueueCell>,
    /// The recycle-queue shape: many producers discarding, one consumer.
    pub recycle: QueueCell,
}

impl QueueBenchResult {
    /// Whether the host can run the gated 4×4 cell's producers and
    /// consumers in genuine parallel — the precondition for holding the
    /// speedup to a hard bar.  Two or three cores technically overlap,
    /// but with 8 threads time-slicing them the lock-free margin gets
    /// noisy enough to flake a CI gate.
    pub fn gate_eligible(&self) -> bool {
        self.cores >= 4
    }

    /// The gated cell: lock-free speedup at 4 producers × 4 consumers.
    pub fn gated_speedup(&self) -> Option<f64> {
        self.contended
            .iter()
            .find(|c| c.producers == 4 && c.consumers == 4)
            .map(QueueCell::speedup)
    }
}

/// Move `items` buffers across `q` with the given thread counts; returns
/// the wall time of the whole transfer.
fn run_cell(q: BenchQueue, producers: usize, consumers: usize, items: usize) -> Duration {
    let start = Instant::now();
    let got = Arc::new(AtomicUsize::new(0));
    let producer_h: Vec<_> = (0..producers)
        .map(|i| {
            let q = q.clone();
            let share = items / producers + usize::from(i < items % producers);
            thread::spawn(move || {
                for _ in 0..share {
                    q.push(BenchQueue::buffer(BUF_BYTES));
                }
            })
        })
        .collect();
    let consumer_h: Vec<_> = (0..consumers)
        .map(|_| {
            let q = q.clone();
            let got = Arc::clone(&got);
            thread::spawn(move || {
                while let Some(b) = q.pop() {
                    std::hint::black_box(b.capacity());
                    got.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for p in producer_h {
        p.join().unwrap();
    }
    q.close();
    for c in consumer_h {
        c.join().unwrap();
    }
    assert_eq!(got.load(Ordering::Relaxed), items, "queue lost items");
    start.elapsed()
}

/// Best-of-N: on shared CI hosts the minimum is the least-contended
/// observation of the same deterministic work, so it gates with far less
/// jitter than a mean.
fn best_of(reps: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..reps).map(|_| f()).min().unwrap_or(Duration::MAX)
}

fn cell(producers: usize, consumers: usize, items: usize, reps: usize) -> QueueCell {
    QueueCell {
        producers,
        consumers,
        items,
        mutex: best_of(reps, || {
            run_cell(BenchQueue::mpmc(CAP), producers, consumers, items)
        }),
        lock_free: best_of(reps, || {
            run_cell(BenchQueue::mpmc_lock_free(CAP), producers, consumers, items)
        }),
    }
}

/// Run the queue smoke benchmark.  `quick` shrinks the transfer so the
/// subcommand stays in CI-smoke territory.
pub fn run_queue_bench(quick: bool) -> QueueBenchResult {
    let (items, reps) = if quick { (20_000, 3) } else { (100_000, 5) };
    QueueBenchResult {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        contended: [1usize, 2, 4, 8]
            .iter()
            .map(|&n| cell(n, n, items, reps))
            .collect(),
        recycle: cell(8, 1, items, reps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_reports_every_cell() {
        let res = run_queue_bench(true);
        assert_eq!(res.contended.len(), 4);
        assert!(res.gated_speedup().is_some());
        assert_eq!(res.recycle.producers, 8);
        assert_eq!(res.recycle.consumers, 1);
        for c in res.contended.iter().chain([&res.recycle]) {
            assert!(c.mutex > Duration::ZERO && c.lock_free > Duration::ZERO);
            assert!(c.speedup().is_finite());
        }
    }
}
