//! Experiment runners for the FG reproduction.
//!
//! Each public function regenerates one artifact of the paper's evaluation
//! (see DESIGN.md's experiment index): Figure 8's per-pass time breakdowns,
//! the in-text tables (partition balance, I/O volume, unbalanced
//! communication), and the ablations (single-linear-pipeline dsort, virtual
//! stages, overlap, buffer-size sweep).  The `experiments` binary drives
//! them and prints paper-style tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod autotune;
pub mod gate;
pub mod io_overlap;
pub mod kernel_bench;
pub mod overlap;
pub mod queue_bench;
pub mod resource_profile;
pub mod unbalanced_comm;

use std::sync::Arc;
use std::time::Duration;

use fg_core::MetricsRegistry;
use fg_pdm::DiskRef;
use fg_sort::config::SortConfig;
use fg_sort::csort::{run_csort, CsortReport};
use fg_sort::dsort::{run_dsort, run_dsort_with, DsortOptions, DsortReport};
use fg_sort::dsort_linear::{run_dsort_linear, DsortLinearReport};
use fg_sort::input::{provision, provision_with_metrics};
use fg_sort::keygen::KeyDist;
use fg_sort::record::RecordFormat;
use fg_sort::verify::{verify_output, Strictness};
use fg_sort::SortError;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Cluster nodes (paper: 16).
    pub nodes: usize,
    /// Bytes of input per node (paper: 4 GB; scaled default: 4 MiB).
    pub bytes_per_node: usize,
}

impl Scale {
    /// The default scaled-down mirror of the paper's setup: 16 nodes,
    /// 256 KiB per node (the paper's 4 GB per node scaled by ~16000×, to
    /// match the ~100× slower simulated disks and the single-core host —
    /// see `SortConfig::experiment_default`).
    pub fn paper_scaled() -> Self {
        Scale {
            nodes: 16,
            bytes_per_node: 256 << 10,
        }
    }

    /// A quick scale for smoke runs.
    pub fn quick() -> Self {
        Scale {
            nodes: 4,
            bytes_per_node: 128 << 10,
        }
    }

    /// Build a [`SortConfig`] for this scale.
    pub fn config(&self, record: RecordFormat, dist: KeyDist) -> SortConfig {
        let mut cfg =
            SortConfig::experiment_default(self.nodes, self.bytes_per_node / record.record_bytes);
        cfg.record = record;
        cfg.dist = dist;
        cfg
    }
}

/// One Figure 8 cell: dsort and csort on the same input.
#[derive(Debug)]
pub struct Fig8Cell {
    /// The distribution sorted.
    pub dist: KeyDist,
    /// dsort's report.
    pub dsort: DsortReport,
    /// csort's report.
    pub csort: CsortReport,
    /// Node 0's per-pass FG reports when the cell was run with
    /// [`run_fig8_cell_observed`]; `None` from [`run_fig8_cell`].
    pub observed: Option<ObservedDsort>,
}

/// Node 0's FG reports from an instrumented dsort run.
#[derive(Debug)]
pub struct ObservedDsort {
    /// Pass 1 (partition & distribute), with per-stage spans.
    pub pass1: fg_core::Report,
    /// Pass 2 (merge & stripe), with per-stage spans; its `metrics` carry
    /// the whole run's `comm/…` and `disk/…` metrics, so this report alone
    /// renders a complete dashboard.
    pub pass2: fg_core::Report,
}

impl Fig8Cell {
    /// dsort total / csort total (the paper reports 74.26%–85.06%).
    pub fn ratio(&self) -> f64 {
        self.dsort.total().as_secs_f64() / self.csort.total.as_secs_f64()
    }
}

/// Run one Figure 8 cell (both sorts, each on freshly provisioned disks),
/// verifying both outputs.
pub fn run_fig8_cell(
    scale: Scale,
    record: RecordFormat,
    dist: KeyDist,
) -> Result<Fig8Cell, SortError> {
    let cfg = scale.config(record, dist);
    let dsort = {
        let disks = provision(&cfg);
        let r = run_dsort(&cfg, &disks)?;
        verify_output(&cfg, &disks, Strictness::Fingerprint)?;
        r
    };
    let csort = {
        let disks = provision(&cfg);
        let r = run_csort(&cfg, &disks)?;
        verify_output(&cfg, &disks, Strictness::Fingerprint)?;
        r
    };
    Ok(Fig8Cell {
        dist,
        dsort,
        csort,
        observed: None,
    })
}

/// [`run_fig8_cell`] with observability on: the dsort run enables span
/// tracing, provisions metrics-instrumented disks, and attaches a shared
/// [`MetricsRegistry`] to every node's communicator.  The returned cell's
/// `observed` holds node 0's per-pass reports, with the run's comm and disk
/// metrics merged into the pass-2 report.
pub fn run_fig8_cell_observed(
    scale: Scale,
    record: RecordFormat,
    dist: KeyDist,
) -> Result<Fig8Cell, SortError> {
    run_fig8_cell_observed_with(scale, record, dist, &Arc::new(MetricsRegistry::new()))
}

/// [`run_fig8_cell_observed`] publishing into a caller-supplied registry,
/// so a live telemetry endpoint (`--telemetry`) can expose the run's
/// metrics while it executes.
pub fn run_fig8_cell_observed_with(
    scale: Scale,
    record: RecordFormat,
    dist: KeyDist,
    registry: &Arc<MetricsRegistry>,
) -> Result<Fig8Cell, SortError> {
    let mut cfg = scale.config(record, dist);
    cfg.trace = true;
    let registry = Arc::clone(registry);
    let dsort = {
        let disks = provision_with_metrics(&cfg, &registry);
        let r = run_dsort_with(
            &cfg,
            &disks,
            DsortOptions {
                metrics: Some(Arc::clone(&registry)),
                ..DsortOptions::default()
            },
        )?;
        verify_output(&cfg, &disks, Strictness::Fingerprint)?;
        r
    };
    let observed = dsort.node0_reports.clone().map(|(pass1, mut pass2)| {
        pass2.metrics.merge(&dsort.metrics);
        ObservedDsort { pass1, pass2 }
    });
    let csort = {
        let disks = provision(&cfg);
        let r = run_csort(&cfg, &disks)?;
        verify_output(&cfg, &disks, Strictness::Fingerprint)?;
        r
    };
    Ok(Fig8Cell {
        dist,
        dsort,
        csort,
        observed,
    })
}

/// Run a full Figure 8 panel (all four distributions) for one record size.
pub fn run_fig8_panel(scale: Scale, record: RecordFormat) -> Result<Vec<Fig8Cell>, SortError> {
    KeyDist::figure8()
        .into_iter()
        .map(|dist| run_fig8_cell(scale, record, dist))
        .collect()
}

/// [`run_fig8_panel`] with observability on (see
/// [`run_fig8_cell_observed`]).
pub fn run_fig8_panel_observed(
    scale: Scale,
    record: RecordFormat,
) -> Result<Vec<Fig8Cell>, SortError> {
    KeyDist::figure8()
        .into_iter()
        .map(|dist| run_fig8_cell_observed(scale, record, dist))
        .collect()
}

/// [`run_fig8_panel_observed`] publishing into a caller-supplied registry
/// (see [`run_fig8_cell_observed_with`]).
pub fn run_fig8_panel_observed_with(
    scale: Scale,
    record: RecordFormat,
    registry: &Arc<MetricsRegistry>,
) -> Result<Vec<Fig8Cell>, SortError> {
    KeyDist::figure8()
        .into_iter()
        .map(|dist| run_fig8_cell_observed_with(scale, record, dist, registry))
        .collect()
}

/// T2: splitter balance — max partition size over the average, per
/// distribution and oversampling factor.
#[derive(Debug)]
pub struct BalanceRow {
    /// Distribution.
    pub dist: KeyDist,
    /// Oversampling factor.
    pub oversample: usize,
    /// max(partition)/avg(partition); the paper reports ≤ 1.10.
    pub max_over_avg: f64,
}

/// Run the splitter-balance sweep.
pub fn run_splitter_balance(
    scale: Scale,
    oversamples: &[usize],
) -> Result<Vec<BalanceRow>, SortError> {
    let mut rows = Vec::new();
    for dist in KeyDist::figure8() {
        for &oversample in oversamples {
            let mut cfg = scale.config(RecordFormat::REC16, dist);
            cfg.oversample = oversample;
            let disks = provision(&cfg);
            let report = run_dsort(&cfg, &disks)?;
            verify_output(&cfg, &disks, Strictness::Fingerprint)?;
            let avg = cfg.records_per_node as f64;
            let max = report.partition_records.iter().copied().max().unwrap_or(0) as f64;
            rows.push(BalanceRow {
                dist,
                oversample,
                max_over_avg: max / avg,
            });
        }
    }
    Ok(rows)
}

/// T3: I/O volume — bytes moved per program (csort should be ~1.5× dsort).
#[derive(Debug)]
pub struct IoVolumeRow {
    /// Program name.
    pub program: &'static str,
    /// Total bytes read across all disks.
    pub bytes_read: u64,
    /// Total bytes written across all disks.
    pub bytes_written: u64,
    /// Total interprocessor bytes sent.
    pub net_bytes: u64,
}

/// Measure I/O and network volume for both sorts on the same input.
pub fn run_io_volume(scale: Scale) -> Result<Vec<IoVolumeRow>, SortError> {
    let cfg = scale.config(RecordFormat::REC16, KeyDist::Uniform);
    let mut rows = Vec::new();
    {
        let disks = provision(&cfg);
        let r = run_dsort(&cfg, &disks)?;
        rows.push(IoVolumeRow {
            program: "dsort",
            bytes_read: r.disk_stats.iter().map(|s| s.bytes_read).sum(),
            bytes_written: r.disk_stats.iter().map(|s| s.bytes_written).sum(),
            net_bytes: r.bytes_sent.iter().sum(),
        });
    }
    {
        let disks = provision(&cfg);
        let r = run_csort(&cfg, &disks)?;
        rows.push(IoVolumeRow {
            program: "csort",
            bytes_read: r.disk_stats.iter().map(|s| s.bytes_read).sum(),
            bytes_written: r.disk_stats.iter().map(|s| s.bytes_written).sum(),
            net_bytes: r.bytes_sent.iter().sum(),
        });
    }
    Ok(rows)
}

/// T4: the unbalanced-communication stress (adversarial distributions).
#[derive(Debug)]
pub struct UnbalancedRow {
    /// Distribution label.
    pub label: String,
    /// dsort report.
    pub dsort: DsortReport,
    /// csort report on the same input.
    pub csort: CsortReport,
}

/// Run dsort and csort under adversarial key distributions.
pub fn run_unbalanced(scale: Scale) -> Result<Vec<UnbalancedRow>, SortError> {
    let dists = [
        KeyDist::Shifted { shift: 1 },
        KeyDist::Shifted {
            shift: scale.nodes / 2,
        },
        KeyDist::HotKey { hot_percent: 90 },
    ];
    let mut rows = Vec::new();
    for dist in dists {
        let cfg = scale.config(RecordFormat::REC16, dist);
        let dsort = {
            let disks = provision(&cfg);
            let r = run_dsort(&cfg, &disks)?;
            verify_output(&cfg, &disks, Strictness::Fingerprint)?;
            r
        };
        let csort = {
            let disks = provision(&cfg);
            let r = run_csort(&cfg, &disks)?;
            verify_output(&cfg, &disks, Strictness::Fingerprint)?;
            r
        };
        rows.push(UnbalancedRow {
            label: dist.label(),
            dsort,
            csort,
        });
    }
    Ok(rows)
}

/// A1: dsort (multiple pipelines) vs dsort-linear (single linear
/// pipelines) on the same input.
#[derive(Debug)]
pub struct LinearAblationRow {
    /// Distribution label.
    pub label: String,
    /// Full dsort report.
    pub dsort: DsortReport,
    /// Linear-restricted dsort report.
    pub linear: DsortLinearReport,
}

/// Run the single-linear-pipeline ablation.
pub fn run_linear_ablation(scale: Scale) -> Result<Vec<LinearAblationRow>, SortError> {
    let mut rows = Vec::new();
    for dist in [KeyDist::Uniform, KeyDist::Shifted { shift: 1 }] {
        let cfg = scale.config(RecordFormat::REC16, dist);
        let dsort = {
            let disks = provision(&cfg);
            let r = run_dsort(&cfg, &disks)?;
            verify_output(&cfg, &disks, Strictness::Fingerprint)?;
            r
        };
        let linear = {
            let disks = provision(&cfg);
            let r = run_dsort_linear(&cfg, &disks)?;
            verify_output(&cfg, &disks, Strictness::Fingerprint)?;
            r
        };
        rows.push(LinearAblationRow {
            label: dist.label(),
            dsort,
            linear,
        });
    }
    Ok(rows)
}

/// A2: virtual stages — pass-2 thread count and time, virtual vs not, as
/// the number of runs grows.
#[derive(Debug)]
pub struct VirtualAblationRow {
    /// Sorted runs per node (vertical pipelines in pass 2).
    pub runs_per_node: u64,
    /// Threads spawned by node 0's pass-2 program with virtual stages.
    pub threads_virtual: u64,
    /// ... and without.
    pub threads_plain: u64,
    /// dsort total with virtual stages.
    pub time_virtual: Duration,
    /// ... and without.
    pub time_plain: Duration,
}

/// Run the virtual-stage ablation: shrink the run size so the number of
/// vertical pipelines grows.
pub fn run_virtual_ablation(
    scale: Scale,
    run_kib: &[usize],
) -> Result<Vec<VirtualAblationRow>, SortError> {
    let mut rows = Vec::new();
    for &kib in run_kib {
        let mut cfg = scale.config(RecordFormat::REC16, KeyDist::Uniform);
        cfg.run_bytes = (kib << 10).max(cfg.block_bytes);
        let (t_virtual, th_virtual, runs) = {
            let disks = provision(&cfg);
            let r = run_dsort_with(
                &cfg,
                &disks,
                DsortOptions {
                    virtual_reads: true,
                    ..DsortOptions::default()
                },
            )?;
            verify_output(&cfg, &disks, Strictness::Fingerprint)?;
            (r.total(), r.pass2_threads[0], r.runs_per_node[0])
        };
        let (t_plain, th_plain) = {
            let disks = provision(&cfg);
            let r = run_dsort_with(
                &cfg,
                &disks,
                DsortOptions {
                    virtual_reads: false,
                    ..DsortOptions::default()
                },
            )?;
            verify_output(&cfg, &disks, Strictness::Fingerprint)?;
            (r.total(), r.pass2_threads[0])
        };
        rows.push(VirtualAblationRow {
            runs_per_node: runs,
            threads_virtual: th_virtual,
            threads_plain: th_plain,
            time_virtual: t_virtual,
            time_plain: t_plain,
        });
    }
    Ok(rows)
}

/// A4: buffer-size sweep — both sorts across block sizes (the paper:
/// "results reported are for the best choices of buffer sizes").
#[derive(Debug)]
pub struct BufferSweepRow {
    /// Block/buffer size in bytes.
    pub block_bytes: usize,
    /// dsort total.
    pub dsort_total: Duration,
    /// csort total.
    pub csort_total: Duration,
}

/// Run the buffer-size sweep.
pub fn run_buffer_sweep(
    scale: Scale,
    block_kib: &[usize],
) -> Result<Vec<BufferSweepRow>, SortError> {
    let mut rows = Vec::new();
    for &kib in block_kib {
        let mut cfg = scale.config(RecordFormat::REC16, KeyDist::Uniform);
        cfg.block_bytes = kib << 10;
        cfg.run_bytes = cfg.run_bytes.max(4 * cfg.block_bytes);
        let dsort_total = {
            let disks = provision(&cfg);
            let r = run_dsort(&cfg, &disks)?;
            verify_output(&cfg, &disks, Strictness::Fingerprint)?;
            r.total()
        };
        let csort_total = {
            let disks = provision(&cfg);
            let r = run_csort(&cfg, &disks)?;
            verify_output(&cfg, &disks, Strictness::Fingerprint)?;
            r.total
        };
        rows.push(BufferSweepRow {
            block_bytes: cfg.block_bytes,
            dsort_total,
            csort_total,
        });
    }
    Ok(rows)
}

/// A6: read-ahead depth — buffers per vertical pipeline in dsort pass 2.
/// With depth 1 the merge stage waits on every run read (no prefetch);
/// deeper pools overlap run reads with merging, the dynamic analogue of
/// the prefetchability the paper credits csort with (§I).
#[derive(Debug)]
pub struct ReadAheadRow {
    /// Buffers per vertical pipeline.
    pub depth: usize,
    /// dsort pass-2 time.
    pub pass2: Duration,
    /// dsort total time.
    pub total: Duration,
}

/// Run the read-ahead ablation.
pub fn run_readahead_ablation(
    scale: Scale,
    depths: &[usize],
) -> Result<Vec<ReadAheadRow>, SortError> {
    let mut rows = Vec::new();
    for &depth in depths {
        let mut cfg = scale.config(RecordFormat::REC16, KeyDist::Uniform);
        cfg.vertical_buffers = depth;
        let disks = provision(&cfg);
        let r = run_dsort(&cfg, &disks)?;
        verify_output(&cfg, &disks, Strictness::Fingerprint)?;
        rows.push(ReadAheadRow {
            depth,
            pass2: r.pass2,
            total: r.total(),
        });
    }
    Ok(rows)
}

/// A5: three-pass vs four-pass columnsort — the benefit of coalescing
/// steps 5–8 into one pass (§III's key observation).
#[derive(Debug)]
pub struct CsortPassAblationRow {
    /// Three-pass total.
    pub csort3_total: Duration,
    /// Four-pass total and per-pass times.
    pub csort4_total: Duration,
    /// csort4/csort3 total-time ratio (expected ~4/3 when I/O-bound).
    pub ratio: f64,
    /// Disk I/O ratio (bytes moved), expected exactly ~4/3.
    pub io_ratio: f64,
}

/// Run the csort pass-count ablation.
pub fn run_csort_pass_ablation(scale: Scale) -> Result<CsortPassAblationRow, SortError> {
    let cfg = scale.config(RecordFormat::REC16, KeyDist::Uniform);
    let (csort3_total, io3) = {
        let disks = provision(&cfg);
        let r = run_csort(&cfg, &disks)?;
        verify_output(&cfg, &disks, Strictness::Fingerprint)?;
        let io: u64 = r.disk_stats.iter().map(|s| s.bytes_total()).sum();
        (r.total, io)
    };
    let (csort4_total, io4) = {
        let disks = provision(&cfg);
        let r = fg_sort::csort4::run_csort4(&cfg, &disks)?;
        verify_output(&cfg, &disks, Strictness::Fingerprint)?;
        let io: u64 = r.disk_stats.iter().map(|s| s.bytes_total()).sum();
        (r.total, io)
    };
    Ok(CsortPassAblationRow {
        csort3_total,
        csort4_total,
        ratio: csort4_total.as_secs_f64() / csort3_total.as_secs_f64(),
        io_ratio: io4 as f64 / io3 as f64,
    })
}

/// One workers-scaling row: csort with its in-core sort stages farmed
/// across `workers` replicas (`Program::workers` via `SortConfig.workers`).
#[derive(Debug)]
pub struct WorkersScalingRow {
    /// Sort-stage replica count.
    pub workers: usize,
    /// Max-across-nodes wall time of each csort pass.
    pub pass: [Duration; 3],
    /// Total wall time.
    pub total: Duration,
}

/// Run csort once per entry of `workers` on zero-cost disks and network,
/// so the in-core sort dominates wall time and the farm's effect is
/// visible (the cost-model disks would hide it behind simulated I/O).
/// Every output is verified.  The speedup of an n-worker row over the
/// 1-worker row scales with physical cores; node count stays small so the
/// node threads don't saturate the host by themselves.
pub fn run_workers_scaling(
    nodes: usize,
    bytes_per_node: usize,
    workers: &[usize],
) -> Result<Vec<WorkersScalingRow>, SortError> {
    let mut rows = Vec::new();
    for &w in workers {
        let mut cfg =
            SortConfig::test_default(nodes, bytes_per_node / RecordFormat::REC16.record_bytes);
        cfg.workers = w;
        let disks = provision(&cfg);
        let r = run_csort(&cfg, &disks)?;
        verify_output(&cfg, &disks, Strictness::Fingerprint)?;
        rows.push(WorkersScalingRow {
            workers: w,
            pass: r.pass,
            total: r.total,
        });
    }
    Ok(rows)
}

/// Provision fresh disks for a config (re-export convenience for benches).
pub fn fresh_disks(cfg: &SortConfig) -> Vec<DiskRef> {
    provision(cfg)
}
