//! A3: the overlap ablation — FG's core claim in isolation.
//!
//! A single node runs `read → compute → write` over a file of blocks, with
//! a real disk cost model.  Executed as an FG pipeline, the three stages
//! overlap: while one buffer's read sleeps on the (serialized) disk arm,
//! another buffer computes.  Executed serially — the same operations, one
//! buffer, one thread — nothing overlaps.  The ratio is the latency FG
//! hides.
//!
//! Note the disk arm serializes read and write *service* times, so the
//! pipeline cannot beat `max(total disk time, total compute time)`; the
//! win comes from hiding compute under I/O and keeping the arm busy.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_core::{map_stage, PipelineCfg, Program, Rounds};
use fg_pdm::{DiskCfg, SimDisk};
use fg_sort::SortError;

/// Result of the overlap ablation.
#[derive(Debug, Clone, Copy)]
pub struct OverlapResult {
    /// Wall time of the FG pipeline.
    pub pipelined: Duration,
    /// Wall time of the serial loop over identical operations.
    pub serial: Duration,
    /// Blocks processed.
    pub blocks: usize,
}

impl OverlapResult {
    /// serial / pipelined — how much latency FG hid.
    pub fn speedup(&self) -> f64 {
        self.serial.as_secs_f64() / self.pipelined.as_secs_f64()
    }
}

/// Busy-compute on a block for roughly `per_byte_ns` nanoseconds per byte
/// (checksum loop — real CPU work, not a sleep, so it genuinely competes
/// for the core the way a sort stage does).
pub(crate) fn compute(data: &mut [u8], passes: usize) -> u64 {
    let mut acc = 0u64;
    for _ in 0..passes {
        for chunk in data.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            acc = acc
                .rotate_left(7)
                .wrapping_add(u64::from_le_bytes(word))
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    data[0] ^= acc as u8;
    acc
}

/// Pick a pass count so [`compute`] on a block of `block_bytes` takes
/// roughly `target` wall time in the current build profile.  The checksum
/// loop is an order of magnitude slower under `cargo test` (debug) than
/// under `--release`; a fixed pass count makes compute dwarf I/O in one
/// profile and vanish in the other, and the overlap win only shows when
/// the two are comparable.
pub fn calibrate_passes(block_bytes: usize, target: Duration) -> usize {
    let mut probe = vec![0x5Au8; block_bytes];
    let mut per_pass = Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        compute(&mut probe, 1);
        per_pass = per_pass.min(t0.elapsed());
    }
    (target.as_nanos() / per_pass.as_nanos().max(1)).clamp(1, 10_000) as usize
}

/// Run the ablation: `blocks` blocks of `block_bytes`, disk cost `disk`,
/// `compute_passes` checksum passes per block.
pub fn run_overlap(
    blocks: usize,
    block_bytes: usize,
    disk: DiskCfg,
    compute_passes: usize,
) -> Result<OverlapResult, SortError> {
    // --- pipelined ---
    let d = SimDisk::new(disk);
    d.load("in", vec![0xAB; blocks * block_bytes]);
    let pipelined = {
        let mut prog = Program::new("overlap");
        let rd = Arc::clone(&d);
        let read = prog.add_stage(
            "read",
            map_stage(move |buf, _| {
                rd.read_at("in", buf.round() * block_bytes as u64, buf.space_mut())
                    .map_err(SortError::from)?;
                buf.fill_to_capacity();
                Ok(())
            }),
        );
        let comp = prog.add_stage(
            "compute",
            map_stage(move |buf, _| {
                compute(buf.filled_mut(), compute_passes);
                Ok(())
            }),
        );
        let wd = Arc::clone(&d);
        let write = prog.add_stage(
            "write",
            map_stage(move |buf, _| {
                wd.write_at("out", buf.round() * block_bytes as u64, buf.filled())
                    .map_err(SortError::from)?;
                Ok(())
            }),
        );
        prog.add_pipeline(
            PipelineCfg::new("p", 4, block_bytes).rounds(Rounds::Count(blocks as u64)),
            &[read, comp, write],
        )
        .map_err(SortError::from)?;
        let t0 = Instant::now();
        prog.run().map_err(SortError::from)?;
        t0.elapsed()
    };

    // --- serial ---
    let d2 = SimDisk::new(disk);
    d2.load("in", vec![0xAB; blocks * block_bytes]);
    let serial = {
        let mut buf = vec![0u8; block_bytes];
        let t0 = Instant::now();
        for b in 0..blocks {
            d2.read_at("in", (b * block_bytes) as u64, &mut buf)?;
            compute(&mut buf, compute_passes);
            d2.write_at("out", (b * block_bytes) as u64, &buf)?;
        }
        t0.elapsed()
    };

    Ok(OverlapResult {
        pipelined,
        serial,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_hides_latency() {
        let disk = DiskCfg::new(Duration::from_micros(500), 200.0 * 1024.0 * 1024.0);
        // Per-block disk service is ~1.6 ms (500 us latency + 312 us
        // transfer, read then write); aim compute at par so the pipeline
        // has latency worth hiding regardless of build profile.
        let passes = calibrate_passes(64 << 10, Duration::from_micros(1600));
        let res = run_overlap(40, 64 << 10, disk, passes).unwrap();
        assert!(
            res.speedup() > 1.15,
            "expected pipeline overlap to win: {res:?} (speedup {:.2})",
            res.speedup()
        );
    }

    #[test]
    fn zero_cost_disk_still_correct() {
        let res = run_overlap(10, 4 << 10, DiskCfg::zero(), 2).unwrap();
        assert_eq!(res.blocks, 10);
        assert!(res.pipelined > Duration::ZERO);
    }
}
