//! Kernel smoke benchmark: the radix sort kernel vs the comparison
//! baseline, and the batched merge vs the scalar loser tree.
//!
//! The criterion bench (`benches/sort_kernels.rs`) is the full local grid;
//! this module is the CI-sized cut — one best-of-N timing per cell — whose
//! artifact the perf gate consumes (`kernel-bench` experiments
//! subcommand).  Best-of-N rather than a mean: on noisy shared hosts the
//! minimum is the least-contended observation of the same deterministic
//! work, so it gates with far less jitter.

use std::time::{Duration, Instant};

use fg_sort::kernels::{sort_records_using, Kernel, SortScratch};
use fg_sort::merge::{merge_runs, LoserTree};
use fg_sort::record::RecordFormat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One merge cell: `k` presorted lanes merged both ways.
#[derive(Debug)]
pub struct MergeCell {
    /// Number of input lanes.
    pub k: usize,
    /// Records per lane.
    pub per_lane: usize,
    /// Scalar loser-tree merge, one winner/replace per record (best-of-N).
    pub scalar: Duration,
    /// Batched `MergeRun` merge (best-of-N).
    pub batched: Duration,
}

impl MergeCell {
    /// Scalar time over batched time.
    pub fn speedup(&self) -> f64 {
        self.scalar.as_secs_f64() / self.batched.as_secs_f64()
    }
}

/// Results of one kernel-bench run.
#[derive(Debug)]
pub struct KernelBenchResult {
    /// Records in the sort cells (uniform full-width keys, REC16).
    pub records: usize,
    /// Radix kernel wall time (best-of-N).
    pub radix: Duration,
    /// Comparison kernel wall time (best-of-N).
    pub comparison: Duration,
    /// Merge cells at increasing fan-in.
    pub merge: Vec<MergeCell>,
}

impl KernelBenchResult {
    /// Comparison time over radix time — the gated sort speedup.
    pub fn sort_speedup(&self) -> f64 {
        self.comparison.as_secs_f64() / self.radix.as_secs_f64()
    }
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        let dt = t.elapsed();
        std::hint::black_box(r);
        best = best.min(dt);
    }
    best
}

fn uniform_records(fmt: RecordFormat, n: usize, seed: u64) -> Vec<u8> {
    let rb = fmt.record_bytes;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bytes = vec![0u8; n * rb];
    for rec in bytes.chunks_exact_mut(rb) {
        fmt.set_key(rec, rng.random());
    }
    bytes
}

/// Presorted lanes: lane `i` holds the contiguous key range
/// `[i·m, (i+1)·m)` — the batched merge's best case and the shape dsort's
/// splitter-partitioned runs approach.
fn presorted_lanes(fmt: RecordFormat, k: usize, per_lane: usize) -> Vec<Vec<u8>> {
    let rb = fmt.record_bytes;
    (0..k)
        .map(|i| {
            let mut bytes = vec![0u8; per_lane * rb];
            for (j, rec) in bytes.chunks_exact_mut(rb).enumerate() {
                fmt.set_key(rec, (i * per_lane + j) as u64);
            }
            bytes
        })
        .collect()
}

/// The pre-kernel scalar merge: one winner/replace per record.
fn scalar_merge(fmt: RecordFormat, runs: &[&[u8]]) -> Vec<u8> {
    let rb = fmt.record_bytes;
    let mut offsets = vec![0usize; runs.len()];
    let head = |run: &[u8], off: usize| -> Option<(u64, u64)> {
        (off < run.len()).then(|| (fmt.key(&run[off..off + rb]), 0))
    };
    let mut tree = LoserTree::new(
        runs.iter()
            .zip(&offsets)
            .map(|(r, &o)| head(r, o))
            .collect(),
    );
    let mut out = Vec::with_capacity(runs.iter().map(|r| r.len()).sum());
    while let Some((lane, _)) = tree.winner() {
        let off = offsets[lane];
        out.extend_from_slice(&runs[lane][off..off + rb]);
        offsets[lane] += rb;
        tree.replace(lane, head(runs[lane], offsets[lane]));
    }
    out
}

/// Run the kernel smoke benchmark.  `quick` shrinks the inputs for CI
/// (the speedup ratios survive the shrink; absolute times don't).
pub fn run_kernel_bench(quick: bool) -> KernelBenchResult {
    let fmt = RecordFormat::REC16;
    let (sort_n, merge_total, reps) = if quick {
        (512 << 10, 64 << 10, 3)
    } else {
        (4 << 20, 256 << 10, 5)
    };

    // Sort cells: same pristine input restored before every rep, one warm
    // scratch so steady-state rounds allocate nothing.
    let pristine = uniform_records(fmt, sort_n, 0xFEED);
    let mut bytes = pristine.clone();
    let mut scratch = SortScratch::new();
    let mut timed_sort = |kernel: Kernel| {
        // Warm pass: first-touch the scratch buffers outside the timing.
        bytes.copy_from_slice(&pristine);
        sort_records_using(fmt, &mut bytes, &mut scratch, kernel);
        best_of(reps, || {
            bytes.copy_from_slice(&pristine);
            sort_records_using(fmt, &mut bytes, &mut scratch, kernel);
            bytes.last().copied()
        })
    };
    let radix = timed_sort(Kernel::Radix);
    let comparison = timed_sort(Kernel::Comparison);

    let merge = [4usize, 64, 256]
        .into_iter()
        .map(|k| {
            let per_lane = merge_total / k;
            let lanes = presorted_lanes(fmt, k, per_lane);
            let refs: Vec<&[u8]> = lanes.iter().map(|l| l.as_slice()).collect();
            let batched = best_of(reps, || merge_runs(fmt, &refs).len());
            let scalar = best_of(reps, || scalar_merge(fmt, &refs).len());
            MergeCell {
                k,
                per_lane,
                scalar,
                batched,
            }
        })
        .collect();

    KernelBenchResult {
        records: sort_n,
        radix,
        comparison,
        merge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_sane_cells() {
        // Tiny shapes: correctness of the harness, not performance.
        let fmt = RecordFormat::REC16;
        let lanes = presorted_lanes(fmt, 4, 8);
        let refs: Vec<&[u8]> = lanes.iter().map(|l| l.as_slice()).collect();
        let a = scalar_merge(fmt, &refs);
        let b = merge_runs(fmt, &refs);
        assert_eq!(a, b, "scalar and batched merges must agree");
        assert!(fmt.is_sorted(&a));
    }
}
