//! The unbalanced-communication experiment, observed (Figure 4 + §IV).
//!
//! Promotes `examples/unbalanced_comm.rs` into a gateable experiment.  Each
//! node of a simulated cluster runs two disjoint FG pipelines — a *send*
//! pipeline scattering locally generated blocks to data-dependent
//! destinations and a *receive* pipeline collecting whatever arrives — with
//! the destinations skewed so rank 0 receives ~70% of all traffic.  The run
//! executes under full cluster observability ([`Cluster::run_observed`]
//! with per-rank registries), folds the per-node telemetry into a
//! [`ClusterReport`], and asks [`diagnose_cluster`] for a verdict.  The
//! acceptance criterion is that the diagnosis *names rank 0* as the hot
//! receiver of a skewed exchange — the observability stack detecting, from
//! metrics alone, the imbalance this program was built to exhibit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fg_cluster::{Cluster, ClusterCfg, ClusterError, ClusterObs, CommError};
use fg_core::cluster_report::{ClusterReport, RankReport};
use fg_core::{
    diagnose_cluster, map_stage, ClusterDiagnosis, FgError, PipelineCfg, Program, Rounds, Stage,
    StageCtx, TraceSink,
};

const BLOCK_BYTES: usize = 4096;
const TAG: u64 = 9;
const MSG_DATA: u8 = 0;
const MSG_DONE: u8 = 1;

/// Outcome of one observed skewed-scatter run.
#[derive(Debug)]
pub struct UnbalancedCommResult {
    /// Blocks each rank received (rank 0 should hold ~70% of the total).
    pub received: Vec<u64>,
    /// Per-node telemetry merged across the cluster.
    pub report: ClusterReport,
    /// The comm-aware verdict over `report`; its `hot_rank` is the gate.
    pub diagnosis: ClusterDiagnosis,
}

/// Run the skewed scatter on `nodes` simulated nodes, each sending
/// `blocks_per_node` 4 KiB blocks — 70% to rank 0, the rest round-robin.
/// When `trace` is set, pipeline and communication spans land in it,
/// grouped per node for the Chrome export.
pub fn run_unbalanced_comm(
    nodes: usize,
    blocks_per_node: u64,
    trace: Option<Arc<TraceSink>>,
) -> Result<UnbalancedCommResult, ClusterError> {
    let mut obs = ClusterObs::per_node(nodes);
    if let Some(sink) = &trace {
        obs = obs.with_trace(Arc::clone(sink));
    }
    let run = Cluster::run_observed(ClusterCfg::zero_cost(nodes), obs, move |node| {
        let wall_start = Instant::now();
        let rank = node.rank();
        let nodes = node.nodes();
        let comm = node.comm().clone();

        let mut prog = Program::new(format!("node{rank}"));
        if let Some(registry) = node.registry() {
            prog.set_metrics(Arc::clone(registry));
        }
        if let Some(sink) = node.trace() {
            prog.set_trace_sink(Arc::clone(sink));
            prog.set_trace_group(rank as u32);
        }

        // --- send pipeline: acquire -> send ---
        let acquire = prog.add_stage(
            "acquire",
            map_stage(move |buf, _ctx| {
                let round = buf.round();
                for (i, b) in buf.space_mut().iter_mut().enumerate() {
                    *b = ((round as usize * 31 + i * 7) % 251) as u8;
                }
                buf.fill_to_capacity();
                Ok(())
            }),
        );
        let comm_tx = comm.clone();
        let send = prog.add_stage(
            "send",
            Box::new(move |ctx: &mut StageCtx| {
                while let Some(buf) = ctx.accept()? {
                    // Destination skew: 70% of every node's blocks go to
                    // rank 0 (the hot receiver); the rest round-robin.
                    let dest = if buf.round() % 10 < 7 {
                        0
                    } else {
                        (rank + 1 + buf.round() as usize) % nodes
                    };
                    let mut payload = Vec::with_capacity(1 + buf.len());
                    payload.push(MSG_DATA);
                    payload.extend_from_slice(buf.filled());
                    comm_tx
                        .send_traced(dest, TAG, payload, buf.trace_id())
                        .map_err(to_fg)?;
                    ctx.convey(buf)?;
                }
                for dst in 0..nodes {
                    comm_tx.send(dst, TAG, vec![MSG_DONE]).map_err(to_fg)?;
                }
                Ok(())
            }) as Box<dyn Stage>,
        );

        // --- receive pipeline: receive -> save ---
        let comm_rx = comm.clone();
        let receive = prog.add_stage(
            "receive",
            Box::new(move |ctx: &mut StageCtx| {
                let pid = ctx.pipelines().next().expect("receive pipeline");
                let mut dones = 0;
                let mut received = 0u64;
                while dones < nodes {
                    let mut buf = match ctx.accept()? {
                        Some(b) => b,
                        None => return Ok(()),
                    };
                    buf.clear();
                    while dones < nodes && buf.remaining() >= BLOCK_BYTES {
                        let msg = comm_rx.recv(None, TAG).map_err(to_fg)?;
                        match msg.payload[0] {
                            MSG_DONE => dones += 1,
                            _ => {
                                buf.append(&msg.payload[1..]);
                                received += 1;
                            }
                        }
                    }
                    buf.meta = received;
                    if buf.is_empty() {
                        ctx.discard(buf)?;
                    } else {
                        ctx.convey(buf)?;
                    }
                }
                ctx.stop(pid)?;
                Ok(())
            }) as Box<dyn Stage>,
        );
        let saved = Arc::new(AtomicU64::new(0));
        let saved2 = Arc::clone(&saved);
        let save = prog.add_stage(
            "save",
            map_stage(move |buf, _ctx| {
                saved2.fetch_add((buf.len() / BLOCK_BYTES) as u64, Ordering::Relaxed);
                Ok(())
            }),
        );

        let node_err = |rank: usize| {
            move |e: FgError| ClusterError::Node {
                rank,
                message: e.to_string(),
            }
        };
        prog.add_pipeline(
            PipelineCfg::new("send", 4, BLOCK_BYTES).rounds(Rounds::Count(blocks_per_node)),
            &[acquire, send],
        )
        .map_err(node_err(rank))?;
        prog.add_pipeline(
            PipelineCfg::new("recv", 2, 4 * BLOCK_BYTES).rounds(Rounds::UntilStopped),
            &[receive, save],
        )
        .map_err(node_err(rank))?;

        let report = prog.run().map_err(node_err(rank))?;
        Ok((saved.load(Ordering::Relaxed), report, wall_start.elapsed()))
    })?;

    let mut cluster = ClusterReport::new(nodes);
    let mut received = Vec::with_capacity(nodes);
    for (rank, (blocks, report, wall)) in run.results.into_iter().enumerate() {
        received.push(blocks);
        cluster.push(RankReport {
            rank,
            wall,
            reports: vec![report],
            metrics: run.node_metrics.get(rank).cloned().unwrap_or_default(),
        });
    }
    let diagnosis = diagnose_cluster(&cluster);
    Ok(UnbalancedCommResult {
        received,
        report: cluster,
        diagnosis,
    })
}

fn to_fg(e: CommError) -> FgError {
    FgError::Stage {
        stage: "comm".into(),
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnosis_names_rank_zero_as_the_hot_receiver() {
        let res = run_unbalanced_comm(4, 32, None).expect("run");
        let total: u64 = res.received.iter().sum();
        assert_eq!(total, 4 * 32, "every block must arrive somewhere");
        assert!(
            res.received[0] > total / 2,
            "rank 0 should receive the bulk of the traffic: {:?}",
            res.received
        );
        assert_eq!(
            res.diagnosis.hot_rank,
            Some(0),
            "diagnosis must name rank 0: {}",
            res.diagnosis.render()
        );
        assert!(
            res.diagnosis
                .recommendations
                .iter()
                .any(|r| r.contains("skew")),
            "expected a skew recommendation: {:?}",
            res.diagnosis.recommendations
        );
    }

    #[test]
    fn traced_run_records_per_node_groups() {
        let sink = TraceSink::new();
        let res = run_unbalanced_comm(4, 16, Some(Arc::clone(&sink))).expect("run");
        assert_eq!(res.report.ranks.len(), 4);
        let chrome = sink.to_chrome_trace();
        for rank in 0..4 {
            assert!(
                chrome.contains(&format!("node{rank}")),
                "chrome export should carry a track group for node{rank}"
            );
        }
    }
}
