//! Autotune convergence: does the closed-loop controller turn a
//! mis-configured pipeline into a hand-tuned one, live?
//!
//! One node streams `read → work(farm) → consume` with a deliberately
//! compute-heavy work stage (a fixed sleep per round, so farm width `w`
//! caps throughput at `w / W`) behind a latency-bearing
//! [`SimDisk`](fg_pdm::SimDisk) read through an
//! [`IoScheduler`](fg_pdm::IoScheduler).  Two arms run the identical
//! program:
//!
//! * **hand-tuned**: the farm fully active and the scheduler at a warm
//!   read-ahead depth, open loop — the configuration an operator who
//!   profiled the pipeline would write down;
//! * **autotuned**: started wrong (one active worker, read-ahead depth 1)
//!   with the [`Controller`](fg_core::Controller) attached.  The
//!   controller must diagnose the starving farm and the cold prefetcher
//!   from the live telemetry windows and actuate its way to the hand-tuned
//!   operating point while the pipeline runs.
//!
//! The comparison metric is **steady-state wall time**: the whole run
//! replayed at the throughput of its last quarter.  The autotuned arm pays
//! a real convergence tax in its first rounds (that is the point), so its
//! total wall time is not the claim — the claim is that where it *lands*
//! matches where the hand-tuned arm *starts*.  Every actuation that got it
//! there is in the returned decision log, with the observation window and
//! measured effect.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fg_core::{
    map_stage, ControllerCfg, ControllerLog, MetricsRegistry, PipelineCfg, Program, Rounds,
};
use fg_pdm::{DiskCfg, DiskRef, IoScheduler, SimDisk};
use fg_sort::SortError;

/// Shape of one convergence arm.
#[derive(Debug, Clone, Copy)]
pub struct AutotuneShape {
    /// Rounds to stream.
    pub rounds: u64,
    /// Bytes per block/buffer.
    pub block_bytes: usize,
    /// Simulated per-op disk latency.
    pub disk_latency: Duration,
    /// Work-stage compute per round (the farm divides this).
    pub work_per_round: Duration,
    /// Declared farm width (the hand-tuned worker count).
    pub width: usize,
    /// Hand-tuned read-ahead depth.
    pub tuned_depth: usize,
}

impl AutotuneShape {
    /// Default shape: long enough for the controller to converge with
    /// plenty of steady-state left to measure.
    pub fn new(quick: bool) -> Self {
        AutotuneShape {
            rounds: if quick { 300 } else { 800 },
            block_bytes: 16 << 10,
            disk_latency: Duration::from_millis(1),
            work_per_round: Duration::from_millis(4),
            width: 4,
            tuned_depth: 4,
        }
    }
}

/// Result of one arm.
#[derive(Debug, Clone)]
pub struct AutotuneResult {
    /// Total wall time of the arm.
    pub total: Duration,
    /// The run replayed at its last-quarter throughput.
    pub steady_state: Duration,
    /// Rounds streamed.
    pub rounds: u64,
    /// Farm workers active at the end.
    pub final_workers: u64,
    /// Scheduler read-ahead depth at the end.
    pub final_depth: usize,
    /// The controller's decision audit log (autotuned arm only).
    pub log: Option<ControllerLog>,
}

/// Run one arm.  `start_workers`/`start_depth` set the initial operating
/// point; `autotune` attaches the controller (which then owns the farm
/// width, pool size, and read-ahead depth for the rest of the run).
pub fn run_arm(
    shape: AutotuneShape,
    start_workers: usize,
    start_depth: usize,
    autotune: bool,
) -> Result<AutotuneResult, SortError> {
    let registry = Arc::new(MetricsRegistry::new());
    let backend = SimDisk::new(DiskCfg::new(shape.disk_latency, f64::INFINITY));
    backend.load(
        "in",
        vec![0xA5u8; shape.block_bytes * shape.rounds as usize],
    );
    let sched = IoScheduler::with_metrics(backend, start_depth, &registry, "d0")
        .map_err(|e| SortError::Config(e.to_string()))?;

    let mut prog = Program::new("autotune-convergence");
    prog.set_metrics(Arc::clone(&registry));
    if autotune {
        prog.add_depth_actuator(sched.clone());
        prog.set_controller(ControllerCfg {
            sample_interval: Duration::from_millis(5),
            decide_interval: Duration::from_millis(25),
            initial_workers: Some(start_workers),
            ..ControllerCfg::default()
        });
    }

    let read_disk: DiskRef = sched.clone();
    let block = shape.block_bytes;
    let read = prog.add_stage(
        "read",
        map_stage(move |buf, _ctx| {
            let r = buf.round();
            read_disk
                .read_at("in", r * block as u64, &mut buf.space_mut()[..block])
                .map_err(SortError::from)?;
            buf.set_filled(block);
            Ok(())
        }),
    );
    let work_each = shape.work_per_round;
    let work = prog.workers("work", shape.width, move |_i| {
        map_stage(move |_buf, _ctx| {
            std::thread::sleep(work_each);
            Ok(())
        })
    });
    // Consume: timestamp each round's completion so steady-state
    // throughput can be measured over the tail of the run.
    let done: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));
    let done2 = Arc::clone(&done);
    let consume = prog.add_stage(
        "consume",
        map_stage(move |_buf, _ctx| {
            done2.lock().unwrap().push(Instant::now());
            Ok(())
        }),
    );

    let buffers = shape.width + 2;
    let mut pc =
        PipelineCfg::new("auto", buffers, shape.block_bytes).rounds(Rounds::Count(shape.rounds));
    if autotune {
        pc = pc.max_buffers(buffers * 2);
    }
    prog.add_pipeline(pc, &[read, work, consume])?;

    // The farm always declares `width` replicas.  Open loop they are all
    // admitted, so the hand-tuned arm passes start_workers == width; the
    // autotuned arm's controller parks all but `initial_workers` of them
    // at startup and re-admits as its diagnosis demands.
    let t0 = Instant::now();
    let report = prog.run()?;
    let total = t0.elapsed();

    let stamps = done.lock().unwrap().clone();
    let steady_state = steady_state_time(&stamps, shape.rounds).unwrap_or(total);
    let snap = registry.snapshot();
    let final_workers = snap
        .gauge("controller/active_workers/work")
        .map(|g| g.value)
        .unwrap_or(start_workers as u64);
    Ok(AutotuneResult {
        total,
        steady_state,
        rounds: shape.rounds,
        final_workers,
        final_depth: sched.depth(),
        log: report.controller,
    })
}

/// The whole run replayed at the throughput of its last quarter: rounds
/// divided by the tail completion rate.  `None` if the tail is too short
/// to measure.
fn steady_state_time(stamps: &[Instant], rounds: u64) -> Option<Duration> {
    let tail = &stamps[stamps.len().saturating_sub(stamps.len() / 4)..];
    if tail.len() < 2 {
        return None;
    }
    let span = tail[tail.len() - 1].duration_since(tail[0]);
    if span.is_zero() {
        return None;
    }
    let rate = (tail.len() - 1) as f64 / span.as_secs_f64();
    Some(Duration::from_secs_f64(rounds as f64 / rate))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_tuned_arm_runs_and_measures() {
        let shape = AutotuneShape {
            rounds: 40,
            work_per_round: Duration::from_millis(1),
            disk_latency: Duration::from_micros(100),
            ..AutotuneShape::new(true)
        };
        let r = run_arm(shape, shape.width, shape.tuned_depth, false).unwrap();
        assert_eq!(r.rounds, 40);
        assert!(r.log.is_none(), "open loop records no controller log");
        assert!(r.steady_state > Duration::ZERO);
        assert_eq!(r.final_depth, shape.tuned_depth);
    }

    #[test]
    fn autotuned_arm_attaches_the_controller() {
        let shape = AutotuneShape {
            rounds: 60,
            work_per_round: Duration::from_millis(1),
            disk_latency: Duration::from_micros(100),
            ..AutotuneShape::new(true)
        };
        let r = run_arm(shape, 1, 1, true).unwrap();
        assert!(r.log.is_some(), "closed loop must return its audit log");
    }
}
