//! Sort/merge kernel microbenchmarks: the LSD radix permutation sort vs
//! the comparison baseline across sizes, record formats, and key
//! distributions, and the batched (galloping) `MergeRun` merge vs the
//! scalar one-record-at-a-time loser tree.
//!
//! The CI gate runs the `kernel-bench` experiments subcommand instead (one
//! timed cell per criterion is too slow for a smoke job); this bench is the
//! full local grid.  Numbers are recorded in EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fg_sort::kernels::{sort_records_using, Kernel, SortScratch};
use fg_sort::merge::{merge_runs, LoserTree};
use fg_sort::record::RecordFormat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Key distributions the sorts see in practice.
#[derive(Clone, Copy)]
enum Dist {
    /// Full-width uniform keys: no digit pass is skippable.
    Uniform,
    /// Keys confined to the low 16 bits: six of eight digit passes skip.
    Skewed,
    /// Already sorted: pdqsort's best case, radix's indifferent case.
    Presorted,
}

impl Dist {
    fn name(self) -> &'static str {
        match self {
            Dist::Uniform => "uniform",
            Dist::Skewed => "skewed",
            Dist::Presorted => "presorted",
        }
    }
}

fn make_input(fmt: RecordFormat, n: usize, dist: Dist, seed: u64) -> Vec<u8> {
    let rb = fmt.record_bytes;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = match dist {
        Dist::Uniform => (0..n).map(|_| rng.random()).collect(),
        Dist::Skewed => (0..n).map(|_| rng.random_range(0..1u64 << 16)).collect(),
        Dist::Presorted => (0..n as u64).collect(),
    };
    if matches!(dist, Dist::Presorted) {
        keys.sort_unstable();
    }
    let mut bytes = vec![0u8; n * rb];
    for (i, &k) in keys.iter().enumerate() {
        fmt.set_key(&mut bytes[i * rb..(i + 1) * rb], k);
    }
    bytes
}

/// Satellite check: once warm, a steady-state sort round must not grow any
/// scratch buffer (the old `sort_bytes` rebuilt its order vec per call).
fn assert_zero_alloc_steady_state() {
    let fmt = RecordFormat::REC16;
    let pristine = make_input(fmt, 64 * 1024, Dist::Uniform, 42);
    let mut bytes = pristine.clone();
    let mut scratch = SortScratch::new();
    // Warm every kernel once: radix and comparison grow different scratch
    // buffers (whole-record pairs vs permutation pairs + aux).
    for kernel in [Kernel::Radix, Kernel::Comparison] {
        bytes.copy_from_slice(&pristine);
        sort_records_using(fmt, &mut bytes, &mut scratch, kernel);
    }
    let warm = scratch.capacity_fingerprint();
    for kernel in [Kernel::Radix, Kernel::Comparison, Kernel::Auto] {
        bytes.copy_from_slice(&pristine);
        sort_records_using(fmt, &mut bytes, &mut scratch, kernel);
        assert_eq!(
            scratch.capacity_fingerprint(),
            warm,
            "steady-state sort reallocated scratch ({kernel:?})"
        );
    }
    println!("zero-alloc steady state: ok {warm:?}");
}

fn bench_sort_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort_kernels");
    group.sample_size(10);
    let grid: &[(RecordFormat, &str, &[usize])] = &[
        (RecordFormat::REC16, "rec16", &[1 << 10, 64 << 10, 4 << 20]),
        (RecordFormat::REC64, "rec64", &[1 << 10, 64 << 10, 4 << 20]),
    ];
    for &(fmt, fname, sizes) in grid {
        for &n in sizes {
            for dist in [Dist::Uniform, Dist::Skewed, Dist::Presorted] {
                // The 4M cells are the gate's case; keep the slow grid
                // corner (4M × non-uniform) to uniform only.
                if n >= 4 << 20 && !matches!(dist, Dist::Uniform) {
                    continue;
                }
                let pristine = make_input(fmt, n, dist, n as u64);
                let mut bytes = pristine.clone();
                let mut scratch = SortScratch::new();
                for (kernel, kname) in
                    [(Kernel::Radix, "radix"), (Kernel::Comparison, "comparison")]
                {
                    let id = format!("{fname}/{}/{n}/{kname}", dist.name());
                    group.bench_function(&id, |b| {
                        b.iter(|| {
                            bytes.copy_from_slice(&pristine);
                            sort_records_using(fmt, &mut bytes, &mut scratch, kernel);
                            black_box(bytes.last());
                        })
                    });
                }
            }
        }
    }
    group.finish();
}

/// Presorted-run lanes: lane `i` holds the contiguous key range
/// `[i·m, (i+1)·m)`, the batched merge's best case (and the shape dsort's
/// splitter-partitioned runs approach).
fn make_lanes(fmt: RecordFormat, k: usize, per_lane: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            let keys: Vec<u64> = (0..per_lane as u64)
                .map(|j| (i * per_lane) as u64 + j)
                .collect();
            let rb = fmt.record_bytes;
            let mut bytes = vec![0u8; keys.len() * rb];
            for (j, &key) in keys.iter().enumerate() {
                fmt.set_key(&mut bytes[j * rb..(j + 1) * rb], key);
            }
            bytes
        })
        .collect()
}

/// The pre-kernel scalar merge: one winner/replace per record.
fn scalar_merge(fmt: RecordFormat, runs: &[&[u8]]) -> Vec<u8> {
    let rb = fmt.record_bytes;
    let mut offsets = vec![0usize; runs.len()];
    let head = |run: &[u8], off: usize| -> Option<(u64, u64)> {
        (off < run.len()).then(|| (fmt.key(&run[off..off + rb]), 0))
    };
    let mut tree = LoserTree::new(
        runs.iter()
            .zip(&offsets)
            .map(|(r, &o)| head(r, o))
            .collect(),
    );
    let mut out = Vec::with_capacity(runs.iter().map(|r| r.len()).sum());
    while let Some((lane, _)) = tree.winner() {
        let off = offsets[lane];
        out.extend_from_slice(&runs[lane][off..off + rb]);
        offsets[lane] += rb;
        tree.replace(lane, head(runs[lane], offsets[lane]));
    }
    out
}

fn bench_merge(c: &mut Criterion) {
    let fmt = RecordFormat::REC16;
    let mut group = c.benchmark_group("merge_kernels");
    group.sample_size(10);
    const TOTAL: usize = 256 << 10; // records across all lanes
    for k in [4usize, 64, 256] {
        let lanes = make_lanes(fmt, k, TOTAL / k);
        let refs: Vec<&[u8]> = lanes.iter().map(|l| l.as_slice()).collect();
        group.bench_function(format!("presorted/k{k}/batched"), |b| {
            b.iter(|| black_box(merge_runs(fmt, &refs)).len())
        });
        group.bench_function(format!("presorted/k{k}/scalar"), |b| {
            b.iter(|| black_box(scalar_merge(fmt, &refs)).len())
        });
    }
    group.finish();
}

fn zero_alloc(_c: &mut Criterion) {
    assert_zero_alloc_steady_state();
}

criterion_group!(benches, zero_alloc, bench_sort_kernels, bench_merge);
criterion_main!(benches);
