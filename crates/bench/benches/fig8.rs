//! Criterion benches regenerating Figure 8: dsort and csort per
//! (record size × distribution) cell, at bench scale.
//!
//! The `experiments` binary produces the paper-shaped tables at full
//! simulated scale; these benches provide statistically sampled timings of
//! the same code paths at a smaller scale suitable for regression
//! tracking.

use criterion::{criterion_group, criterion_main, Criterion};

use fg_sort::config::SortConfig;
use fg_sort::csort::run_csort;
use fg_sort::dsort::run_dsort;
use fg_sort::input::provision;
use fg_sort::keygen::KeyDist;
use fg_sort::record::RecordFormat;

/// Small but non-trivial: 4 nodes, 64 KiB/node, mild cost model so the
/// benches finish quickly while still exercising the simulated substrate.
fn bench_config(record: RecordFormat, dist: KeyDist) -> SortConfig {
    let mut cfg = SortConfig::experiment_default(4, (64 << 10) / record.record_bytes);
    cfg.record = record;
    cfg.dist = dist;
    cfg.disk = fg_pdm::DiskCfg::new(std::time::Duration::from_micros(50), 24.0 * 1024.0 * 1024.0);
    cfg.net = fg_cluster::NetCfg::new(
        std::time::Duration::from_micros(10),
        100.0 * 1024.0 * 1024.0,
    );
    cfg
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for record in [RecordFormat::REC16, RecordFormat::REC64] {
        for dist in KeyDist::figure8() {
            let rec_name = format!("rec{}", record.record_bytes);
            let cfg = bench_config(record, dist);
            group.bench_function(format!("dsort/{rec_name}/{}", dist.label()), |b| {
                b.iter(|| {
                    let disks = provision(&cfg);
                    run_dsort(&cfg, &disks).expect("dsort")
                })
            });
            group.bench_function(format!("csort/{rec_name}/{}", dist.label()), |b| {
                b.iter(|| {
                    let disks = provision(&cfg);
                    run_csort(&cfg, &disks).expect("csort")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
