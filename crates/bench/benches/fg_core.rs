//! Microbenchmarks of the FG runtime itself: per-buffer pipeline overhead,
//! queue throughput under contention, merge-tree cost, and record sorting —
//! the framework costs underneath every experiment.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use fg_core::{
    map_stage, run_linear, CountingObserver, MetricsRegistry, Observer, PipelineCfg, Program,
    Rounds, Sampler, SamplerCfg, TelemetryServer, TraceSink,
};
use fg_sort::merge::LoserTree;
use fg_sort::record::RecordFormat;

fn bench_pipeline_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_pipeline");
    group.sample_size(10);
    // 1000 rounds through a 3-stage no-op pipeline: measures pure
    // accept/convey/recycle overhead per buffer.
    group.bench_function("noop_3stage_1000rounds", |b| {
        b.iter(|| {
            run_linear(
                "bench",
                PipelineCfg::new("p", 4, 4096).rounds(Rounds::Count(1000)),
                vec![
                    ("a", map_stage(|_, _| Ok(()))),
                    ("b", map_stage(|_, _| Ok(()))),
                    ("c", map_stage(|_, _| Ok(()))),
                ],
            )
            .expect("pipeline")
        })
    });
    group.finish();
}

/// The observability layer's acceptance gate: the same no-op pipeline with
/// no observer installed vs a [`CountingObserver`] seeing every event.  The
/// no-observer case must stay within noise of the plain hot path (the hook
/// sites are a never-taken `Option` branch).
fn bench_observer_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_observer");
    group.sample_size(10);
    let build = || {
        let mut prog = Program::new("bench");
        let a = prog.add_stage("a", map_stage(|_, _| Ok(())));
        let b = prog.add_stage("b", map_stage(|_, _| Ok(())));
        let c = prog.add_stage("c", map_stage(|_, _| Ok(())));
        prog.add_pipeline(
            PipelineCfg::new("p", 4, 4096).rounds(Rounds::Count(1000)),
            &[a, b, c],
        )
        .unwrap();
        prog
    };
    group.bench_function("no_observer_1000rounds", |b| {
        b.iter(|| build().run().expect("pipeline"))
    });
    group.bench_function("counting_observer_1000rounds", |b| {
        b.iter(|| {
            let mut prog = build();
            prog.set_observer(Arc::new(CountingObserver::new()) as Arc<dyn Observer>);
            prog.run().expect("pipeline")
        })
    });
    // Live-telemetry overhead: the same pipeline with queue-depth gauges
    // publishing into a registry, and then with a background sampler plus
    // an idle HTTP endpoint on top.  The acceptance bar is <2% over the
    // no_observer baseline.
    group.bench_function("metrics_registry_1000rounds", |b| {
        b.iter(|| {
            let mut prog = build();
            prog.set_metrics(Arc::new(MetricsRegistry::new()));
            prog.run().expect("pipeline")
        })
    });
    group.bench_function("telemetry_sampled_1000rounds", |b| {
        let registry = Arc::new(MetricsRegistry::new());
        let _server =
            TelemetryServer::bind("127.0.0.1:0", Arc::clone(&registry)).expect("bind telemetry");
        let _sampler = Sampler::start(Arc::clone(&registry), SamplerCfg::default());
        b.iter(|| {
            let mut prog = build();
            prog.set_metrics(Arc::clone(&registry));
            prog.run().expect("pipeline")
        })
    });
    group.finish();
}

/// The flight recorder's acceptance gate: the same no-op pipeline with no
/// [`TraceSink`](fg_core::TraceSink) installed vs every transition writing
/// a span record into the per-thread ring.  The no-sink case must stay
/// within noise of the plain hot path (<3% on queue throughput) — the hook
/// is a never-taken `Option` branch, exactly like the observer's.
fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_trace");
    group.sample_size(10);
    let build = || {
        let mut prog = Program::new("bench");
        let a = prog.add_stage("a", map_stage(|_, _| Ok(())));
        let b = prog.add_stage("b", map_stage(|_, _| Ok(())));
        let c = prog.add_stage("c", map_stage(|_, _| Ok(())));
        prog.add_pipeline(
            PipelineCfg::new("p", 4, 4096).rounds(Rounds::Count(1000)),
            &[a, b, c],
        )
        .unwrap();
        prog
    };
    group.bench_function("no_sink_1000rounds", |b| {
        b.iter(|| build().run().expect("pipeline"))
    });
    group.bench_function("flight_recorder_1000rounds", |b| {
        b.iter(|| {
            let mut prog = build();
            prog.set_trace_sink(TraceSink::new());
            prog.run().expect("pipeline")
        })
    });
    group.finish();
}

fn bench_loser_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_merge");
    for k in [4usize, 64, 256] {
        group.bench_function(format!("loser_tree_k{k}_pop100k"), |b| {
            b.iter(|| {
                let mut lanes: Vec<u64> = (0..k as u64).collect();
                let mut tree = LoserTree::new(lanes.iter().map(|&v| Some((v, 0))).collect());
                let mut out = 0u64;
                for _ in 0..100_000 {
                    let (lane, (key, _)) = tree.winner().expect("non-empty");
                    out = out.wrapping_add(key);
                    lanes[lane] += k as u64;
                    tree.replace(lane, Some((lanes[lane], 0)));
                }
                out
            })
        });
    }
    group.finish();
}

fn bench_sort_bytes(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_sort");
    let fmt = RecordFormat::REC16;
    let n = 16384;
    let mut data = vec![0u8; n * 16];
    for i in 0..n {
        fmt.set_key(
            &mut data[i * 16..(i + 1) * 16],
            (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
    }
    group.bench_function("sort_16k_records", |b| {
        let mut aux = Vec::new();
        b.iter(|| {
            let mut copy = data.clone();
            fmt.sort_bytes(&mut copy, &mut aux);
            copy[0]
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline_overhead,
    bench_observer_overhead,
    bench_trace_overhead,
    bench_loser_tree,
    bench_sort_bytes
);
criterion_main!(benches);
