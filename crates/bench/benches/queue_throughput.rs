//! Queue fast-path microbenchmarks: the mutex-guarded MPMC flavor vs the
//! SPSC ring that `wire()` picks automatically for plain chains, batched
//! pop (`accept_many`'s underlying drain), contended MPMC access, and the
//! end-to-end cost of an ordered worker farm vs a plain stage.
//!
//! Numbers are recorded in EXPERIMENTS.md.  On a single-core host the
//! threaded cases mostly measure handoff/park cost, not parallelism; the
//! SPSC-vs-MPMC gap is visible either way.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fg_core::qbench::{Batch, BenchQueue};
use fg_core::{map_stage, PipelineCfg, Program, Rounds};

/// Items transferred per measured iteration.
const ITEMS: usize = 4096;
/// Queue capacity, matching a typical pipeline's buffer pool.
const CAP: usize = 8;
/// Payload size; small so queue overhead dominates.
const BUF_BYTES: usize = 64;

/// Push `ITEMS` buffers from one thread, pop them here one at a time.
fn one_to_one(q: BenchQueue, batch_pop: bool) {
    let producer = {
        let q = q.clone();
        thread::spawn(move || {
            for _ in 0..ITEMS {
                q.push(BenchQueue::buffer(BUF_BYTES));
            }
        })
    };
    let mut received = 0usize;
    if batch_pop {
        let mut batch = Batch::default();
        while received < ITEMS {
            q.pop_many(64, &mut batch);
            batch.drain_buffers(|b| {
                black_box(b.capacity());
                received += 1;
            });
        }
    } else {
        while received < ITEMS {
            let b = q.pop().expect("open queue");
            black_box(b.capacity());
            received += 1;
        }
    }
    producer.join().unwrap();
}

/// `producers` x `consumers` threads hammer one MPMC queue (either
/// flavor) until `ITEMS` buffers have crossed.
fn contended(q: BenchQueue, producers: usize, consumers: usize) {
    let got = Arc::new(AtomicUsize::new(0));
    let producer_h: Vec<_> = (0..producers)
        .map(|i| {
            let q = q.clone();
            // Distribute the remainder so the totals always sum to ITEMS.
            let share = ITEMS / producers + usize::from(i < ITEMS % producers);
            thread::spawn(move || {
                for _ in 0..share {
                    q.push(BenchQueue::buffer(BUF_BYTES));
                }
            })
        })
        .collect();
    let consumer_h: Vec<_> = (0..consumers)
        .map(|_| {
            let q = q.clone();
            let got = Arc::clone(&got);
            thread::spawn(move || {
                while let Some(b) = q.pop() {
                    black_box(b.capacity());
                    got.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for p in producer_h {
        p.join().unwrap();
    }
    q.close();
    for c in consumer_h {
        c.join().unwrap();
    }
    assert_eq!(got.load(Ordering::Relaxed), ITEMS);
}

/// Run a one-stage pipeline for `rounds`, the stage either plain or farmed.
fn run_stage_pipeline(workers: usize, rounds: u64) {
    let mut prog = Program::new("qbench");
    let body = || {
        map_stage(|buf, _| {
            black_box(buf.filled());
            Ok(())
        })
    };
    let stage = if workers > 1 {
        prog.workers("w", workers, move |_| body())
    } else {
        prog.add_stage("w", body())
    };
    prog.add_pipeline(
        PipelineCfg::new("p", CAP, BUF_BYTES).rounds(Rounds::Count(rounds)),
        &[stage],
    )
    .unwrap();
    prog.run().unwrap();
}

fn queue_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_throughput");
    group.sample_size(10);
    group.bench_function("spsc_shape/mpmc", |b| {
        b.iter(|| one_to_one(BenchQueue::mpmc(CAP), false))
    });
    group.bench_function("spsc_shape/spsc", |b| {
        b.iter(|| one_to_one(BenchQueue::spsc(CAP), false))
    });
    group.bench_function("spsc_shape/spsc_batched", |b| {
        b.iter(|| one_to_one(BenchQueue::spsc(CAP), true))
    });
    // Contended matrix: both MPMC flavors at symmetric producer/consumer
    // counts, plus the recycle-queue shape (every stage of a group pushes
    // discards, one source drains).  The lock-free ring is the planner's
    // default for these queues; the mutex flavor is the baseline the CI
    // gate compares against.
    for n in [1usize, 2, 4, 8] {
        group.bench_function(format!("contended/mutex_{n}p{n}c"), |b| {
            b.iter(|| contended(BenchQueue::mpmc(CAP), n, n))
        });
        group.bench_function(format!("contended/lockfree_{n}p{n}c"), |b| {
            b.iter(|| contended(BenchQueue::mpmc_lock_free(CAP), n, n))
        });
    }
    group.bench_function("recycle_shape/mutex_8p1c", |b| {
        b.iter(|| contended(BenchQueue::mpmc(CAP), 8, 1))
    });
    group.bench_function("recycle_shape/lockfree_8p1c", |b| {
        b.iter(|| contended(BenchQueue::mpmc_lock_free(CAP), 8, 1))
    });
    group.finish();
}

fn replicated_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("replicated_stage");
    group.sample_size(10);
    group.bench_function("plain", |b| b.iter(|| run_stage_pipeline(1, 512)));
    group.bench_function("workers_4", |b| b.iter(|| run_stage_pipeline(4, 512)));
    group.finish();
}

criterion_group!(benches, queue_throughput, replicated_stage);
criterion_main!(benches);
