//! Criterion benches for the ablation experiments: A1 (linear pipelines),
//! A2 (virtual stages), A3 (overlap), A4 (buffer sizes), plus T4's
//! adversarial input.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use fg_bench::overlap::run_overlap;
use fg_pdm::DiskCfg;
use fg_sort::config::SortConfig;
use fg_sort::dsort::{run_dsort, run_dsort_with, DsortOptions};
use fg_sort::dsort_linear::run_dsort_linear;
use fg_sort::input::provision;
use fg_sort::keygen::KeyDist;

fn cfg_small(dist: KeyDist) -> SortConfig {
    let mut cfg = SortConfig::experiment_default(4, (64 << 10) / 16);
    cfg.dist = dist;
    cfg.disk = DiskCfg::new(Duration::from_micros(50), 24.0 * 1024.0 * 1024.0);
    cfg.net = fg_cluster::NetCfg::new(Duration::from_micros(10), 100.0 * 1024.0 * 1024.0);
    cfg
}

fn bench_linear_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_linear");
    group.sample_size(10);
    for dist in [KeyDist::Uniform, KeyDist::Shifted { shift: 1 }] {
        let cfg = cfg_small(dist);
        group.bench_function(format!("dsort/{}", dist.label()), |b| {
            b.iter(|| run_dsort(&cfg, &provision(&cfg)).expect("dsort"))
        });
        group.bench_function(format!("dsort-linear/{}", dist.label()), |b| {
            b.iter(|| run_dsort_linear(&cfg, &provision(&cfg)).expect("linear"))
        });
    }
    group.finish();
}

fn bench_virtual_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_virtual");
    group.sample_size(10);
    let mut cfg = cfg_small(KeyDist::Uniform);
    cfg.run_bytes = cfg.block_bytes; // many small runs -> many verticals
    for (name, virtual_reads) in [("virtual", true), ("plain", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                run_dsort_with(
                    &cfg,
                    &provision(&cfg),
                    DsortOptions {
                        virtual_reads,
                        ..DsortOptions::default()
                    },
                )
                .expect("dsort")
            })
        });
    }
    group.finish();
}

fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_overlap");
    group.sample_size(10);
    let disk = DiskCfg::new(Duration::from_micros(100), 200.0 * 1024.0 * 1024.0);
    group.bench_function("pipelined_vs_serial", |b| {
        b.iter(|| run_overlap(32, 32 << 10, disk, 8).expect("overlap"))
    });
    group.finish();
}

fn bench_buffer_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("a4_buffers");
    group.sample_size(10);
    for kib in [4usize, 16, 64] {
        let mut cfg = cfg_small(KeyDist::Uniform);
        cfg.block_bytes = kib << 10;
        cfg.run_bytes = cfg.run_bytes.max(4 * cfg.block_bytes);
        group.bench_function(format!("dsort/{kib}KiB"), |b| {
            b.iter(|| run_dsort(&cfg, &provision(&cfg)).expect("dsort"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_linear_ablation,
    bench_virtual_ablation,
    bench_overlap,
    bench_buffer_sweep
);
criterion_main!(benches);
