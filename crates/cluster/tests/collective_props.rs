//! Property-based tests for the communicator's collectives with arbitrary
//! payloads and cluster sizes.

use proptest::collection::vec;
use proptest::prelude::*;

use fg_cluster::{Cluster, ClusterCfg};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// allgather returns every node's exact payload to every node.
    #[test]
    fn allgather_roundtrip(nodes in 1usize..6, payloads in vec(vec(any::<u8>(), 0..64), 6)) {
        let payloads = std::sync::Arc::new(payloads);
        let p2 = std::sync::Arc::clone(&payloads);
        let run = Cluster::run(ClusterCfg::zero_cost(nodes), move |node| {
            let mine = p2[node.rank() % p2.len()].clone();
            Ok(node.comm().allgather(mine)?)
        })
        .unwrap();
        for parts in run.results {
            prop_assert_eq!(parts.len(), nodes);
            for (rank, part) in parts.iter().enumerate() {
                prop_assert_eq!(part, &payloads[rank % payloads.len()]);
            }
        }
    }

    /// alltoallv conserves every byte and routes it to the right place.
    #[test]
    fn alltoallv_conserves_bytes(nodes in 1usize..6, seed in any::<u64>()) {
        let run = Cluster::run(ClusterCfg::zero_cost(nodes), move |node| {
            // parts[dst] derived deterministically from (src, dst, seed).
            let parts: Vec<Vec<u8>> = (0..node.nodes())
                .map(|dst| {
                    let len = ((seed ^ (node.rank() as u64) << 8 ^ dst as u64) % 32) as usize;
                    vec![(node.rank() * 16 + dst) as u8; len]
                })
                .collect();
            Ok(node.comm().alltoallv(parts)?)
        })
        .unwrap();
        for (me, received) in run.results.iter().enumerate() {
            for (src, part) in received.iter().enumerate() {
                let len = ((seed ^ (src as u64) << 8 ^ me as u64) % 32) as usize;
                prop_assert_eq!(part.len(), len, "node {} from {}", me, src);
                prop_assert!(part.iter().all(|&b| b == (src * 16 + me) as u8));
            }
        }
    }

    /// broadcast delivers the root's exact payload regardless of root.
    #[test]
    fn broadcast_from_any_root(nodes in 1usize..6, root_pick in any::<usize>(), data in vec(any::<u8>(), 0..128)) {
        let root = root_pick % nodes;
        let data2 = data.clone();
        let run = Cluster::run(ClusterCfg::zero_cost(nodes), move |node| {
            let mine = if node.rank() == root { data2.clone() } else { vec![0xEE] };
            Ok(node.comm().broadcast(root, &mine)?)
        })
        .unwrap();
        for got in run.results {
            prop_assert_eq!(&got, &data);
        }
    }

    /// Reductions agree with the sequential fold for arbitrary inputs.
    #[test]
    fn reductions_match_fold(values in vec(any::<u64>(), 1..6)) {
        let nodes = values.len();
        let v2 = values.clone();
        let run = Cluster::run(ClusterCfg::zero_cost(nodes), move |node| {
            let x = v2[node.rank()];
            Ok((
                node.comm().allreduce_sum(x % (u64::MAX / nodes as u64))?,
                node.comm().allreduce_max(x)?,
            ))
        })
        .unwrap();
        let sum: u64 = values.iter().map(|&x| x % (u64::MAX / nodes as u64)).sum();
        let max = *values.iter().max().unwrap();
        for (s, m) in run.results {
            prop_assert_eq!(s, sum);
            prop_assert_eq!(m, max);
        }
    }
}
