//! Tests of cross-node trace propagation: per-node comm rings, collective
//! span counts, cluster-report traffic totals, and the stitched Chrome
//! export.

use std::sync::Arc;
use std::time::Duration;

use fg_cluster::{Cluster, ClusterCfg, ClusterObs};
use fg_core::cluster_report::{ClusterReport, RankReport};
use fg_core::{Json, TraceKind, TraceSink};

const COLLECTIVE_TRACE_BIT: u64 = 1 << 62;

/// Three nodes, each making a fixed schedule of comm calls under a shared
/// trace sink; returns the sink and the run's fabric traffic and metrics.
fn traced_run(nodes: usize) -> (Arc<TraceSink>, fg_cluster::ClusterRun<()>) {
    let sink = TraceSink::new();
    let obs = ClusterObs::per_node(nodes).with_trace(Arc::clone(&sink));
    let run = Cluster::run_observed(ClusterCfg::zero_cost(nodes), obs, move |ctx| {
        let comm = ctx.comm();
        let next = (ctx.rank() + 1) % ctx.nodes();
        let prev = (ctx.rank() + ctx.nodes() - 1) % ctx.nodes();
        comm.send_traced(next, 7, vec![0u8; 256], 1000 + ctx.rank() as u64)?;
        comm.recv(Some(prev), 7)?;
        comm.barrier()?;
        comm.barrier()?;
        comm.broadcast(0, &[1, 2, 3])?;
        comm.allgather(vec![ctx.rank() as u8])?;
        comm.alltoallv(vec![vec![9u8; 16]; ctx.nodes()])?;
        Ok(())
    })
    .unwrap();
    (sink, run)
}

#[test]
fn each_collective_records_exactly_one_span_per_node_per_call() {
    const NODES: usize = 3;
    let (sink, _run) = traced_run(NODES);
    let logs = sink.collect();
    for rank in 0..NODES {
        let ring = logs
            .iter()
            .find(|l| l.thread == format!("node{rank}/comm"))
            .unwrap_or_else(|| panic!("no comm ring for rank {rank}"));
        let count = |kind: TraceKind| ring.spans.iter().filter(|s| s.kind == kind).count();
        // The schedule above: 2 barriers, 1 broadcast, 1 allgather,
        // 1 alltoallv, 1 send, 1 recv — and exactly that many spans, not
        // multiplied by the cluster size.
        assert_eq!(count(TraceKind::Barrier), 2, "rank {rank} barrier spans");
        assert_eq!(
            count(TraceKind::Broadcast),
            1,
            "rank {rank} broadcast spans"
        );
        assert_eq!(
            count(TraceKind::Allgather),
            1,
            "rank {rank} allgather spans"
        );
        assert_eq!(
            count(TraceKind::Alltoallv),
            1,
            "rank {rank} alltoallv spans"
        );
        assert_eq!(count(TraceKind::CommSend), 1, "rank {rank} send spans");
        assert_eq!(count(TraceKind::CommRecv), 1, "rank {rank} recv spans");
    }
}

#[test]
fn collective_spans_share_one_trace_id_across_ranks() {
    const NODES: usize = 3;
    let (sink, _run) = traced_run(NODES);
    let logs = sink.collect();
    // The first barrier on every rank carries the same collective trace id
    // (bit 62 | collective sequence) — that id is what joins the per-rank
    // spans into one cross-rank flow.
    let mut first_barrier_ids = Vec::new();
    for rank in 0..NODES {
        let ring = logs
            .iter()
            .find(|l| l.thread == format!("node{rank}/comm"))
            .unwrap();
        let id = ring
            .spans
            .iter()
            .find(|s| s.kind == TraceKind::Barrier)
            .map(|s| s.trace_id)
            .unwrap();
        assert!(id & COLLECTIVE_TRACE_BIT != 0, "collective bit set");
        first_barrier_ids.push(id);
    }
    assert!(
        first_barrier_ids.windows(2).all(|w| w[0] == w[1]),
        "barrier trace ids differ across ranks: {first_barrier_ids:?}"
    );
    // A point-to-point send's trace id survives the hop: the sender's
    // comm-send span and the receiver's comm-recv span share it.
    let send_ids: Vec<u64> = (0..NODES)
        .map(|rank| {
            logs.iter()
                .find(|l| l.thread == format!("node{rank}/comm"))
                .unwrap()
                .spans
                .iter()
                .find(|s| s.kind == TraceKind::CommSend)
                .map(|s| s.trace_id)
                .unwrap()
        })
        .collect();
    assert_eq!(send_ids, vec![1000, 1001, 1002]);
    for rank in 0..NODES {
        let prev = (rank + NODES - 1) % NODES;
        let recv_id = logs
            .iter()
            .find(|l| l.thread == format!("node{rank}/comm"))
            .unwrap()
            .spans
            .iter()
            .find(|s| s.kind == TraceKind::CommRecv)
            .map(|s| s.trace_id)
            .unwrap();
        assert_eq!(recv_id, 1000 + prev as u64, "rank {rank} recv trace id");
    }
}

#[test]
fn cluster_report_traffic_totals_equal_fabric_bytes_moved() {
    const NODES: usize = 3;
    let (_sink, run) = traced_run(NODES);
    let mut report = ClusterReport::new(NODES);
    for rank in 0..NODES {
        report.push(RankReport {
            rank,
            wall: Duration::from_millis(1),
            reports: Vec::new(),
            metrics: run.node_metrics[rank].clone(),
        });
    }
    let fabric_sent: u64 = run.traffic.iter().map(|t| t.bytes_sent).sum();
    let matrix = report.traffic_matrix();
    let matrix_total: u64 = matrix.iter().flatten().sum();
    assert_eq!(matrix_total, fabric_sent, "matrix total vs fabric bytes");
    let by_row: u64 = report.bytes_sent().iter().sum();
    let by_col: u64 = report.bytes_received().iter().sum();
    assert_eq!(by_row, fabric_sent);
    assert_eq!(by_col, fabric_sent);
}

#[test]
fn chrome_export_groups_nodes_and_stitches_cross_rank_flows() {
    const NODES: usize = 3;
    let (sink, _run) = traced_run(NODES);
    let doc = Json::parse(&sink.to_chrome_trace()).expect("valid chrome JSON");
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("no traceEvents array: {other:?}"),
    };
    // One process track per node.
    let mut track_names = Vec::new();
    for e in events {
        if e.get("name").and_then(Json::as_str) == Some("process_name") {
            let name = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            track_names.push(name);
        }
    }
    for rank in 0..NODES {
        assert!(
            track_names.iter().any(|n| n == &format!("node{rank}")),
            "missing track group node{rank} in {track_names:?}"
        );
    }
    // At least one flow (same id) starts on one node's track and finishes
    // on another's — the cross-rank stitch.
    let mut flow_pids: std::collections::HashMap<String, Vec<(String, f64)>> =
        std::collections::HashMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph == "s" || ph == "f" {
            let id = e.get("id").and_then(Json::as_str).expect("string flow id");
            let pid = e.get("pid").and_then(Json::as_f64).unwrap();
            flow_pids
                .entry(id.to_string())
                .or_default()
                .push((ph.to_string(), pid));
        }
    }
    assert!(!flow_pids.is_empty(), "no flow events in export");
    let cross_rank = flow_pids.values().any(|touches| {
        let pids: std::collections::HashSet<u64> =
            touches.iter().map(|(_, pid)| *pid as u64).collect();
        pids.len() >= 2
    });
    assert!(cross_rank, "no flow spans more than one node track");
}
