//! Integration tests for the cluster: collectives, concurrency across stage
//! threads, failure poisoning, and the cost model's effect on wall time.

use std::time::{Duration, Instant};

use fg_cluster::{Cluster, ClusterCfg, ClusterError, NetCfg};

const P: usize = 8;

#[test]
fn barrier_synchronizes() {
    // Without the barrier, node 0 would observe fewer than P-1 increments.
    let run = Cluster::run(ClusterCfg::zero_cost(P), |node| {
        // Everyone tells node 0 they reached phase 1, then barriers.
        if node.rank() != 0 {
            node.comm().send(0, 42, vec![node.rank() as u8])?;
        }
        node.comm().barrier()?;
        if node.rank() == 0 {
            // All P-1 messages must already be deliverable without blocking
            // indefinitely: they were sent before the barrier.
            let mut seen = 0;
            for _ in 1..node.nodes() {
                node.comm().recv(None, 42)?;
                seen += 1;
            }
            return Ok(seen);
        }
        Ok(0)
    })
    .unwrap();
    assert_eq!(run.results[0], P - 1);
}

#[test]
fn broadcast_reaches_all() {
    let run = Cluster::run(ClusterCfg::zero_cost(P), |node| {
        let data = if node.rank() == 3 {
            b"splitters".to_vec()
        } else {
            vec![]
        };
        let got = node.comm().broadcast(3, &data)?;
        Ok(got)
    })
    .unwrap();
    for r in run.results {
        assert_eq!(r, b"splitters".to_vec());
    }
}

#[test]
fn gather_collects_by_rank() {
    let run = Cluster::run(ClusterCfg::zero_cost(P), |node| {
        let mine = vec![node.rank() as u8; node.rank()];
        Ok(node.comm().gather(0, mine)?)
    })
    .unwrap();
    let at_root = run.results[0].as_ref().expect("root gets parts");
    for (rank, part) in at_root.iter().enumerate() {
        assert_eq!(part, &vec![rank as u8; rank]);
    }
    for r in &run.results[1..] {
        assert!(r.is_none());
    }
}

#[test]
fn allgather_everyone_sees_everything() {
    let run = Cluster::run(ClusterCfg::zero_cost(P), |node| {
        Ok(node.comm().allgather(vec![node.rank() as u8 * 10])?)
    })
    .unwrap();
    for parts in run.results {
        assert_eq!(parts.len(), P);
        for (rank, part) in parts.iter().enumerate() {
            assert_eq!(part, &vec![rank as u8 * 10]);
        }
    }
}

#[test]
fn alltoallv_routes_parts() {
    let run = Cluster::run(ClusterCfg::zero_cost(P), |node| {
        // parts[dst] = [src, dst] repeated (src+1) times
        let parts: Vec<Vec<u8>> = (0..node.nodes())
            .map(|dst| {
                std::iter::repeat_n([node.rank() as u8, dst as u8], node.rank() + 1)
                    .flatten()
                    .collect()
            })
            .collect();
        Ok(node.comm().alltoallv(parts)?)
    })
    .unwrap();
    for (me, received) in run.results.iter().enumerate() {
        for (src, part) in received.iter().enumerate() {
            let expect: Vec<u8> = std::iter::repeat_n([src as u8, me as u8], src + 1)
                .flatten()
                .collect();
            assert_eq!(part, &expect, "node {me} part from {src}");
        }
    }
}

#[test]
fn alltoallv_wrong_shape_is_error() {
    let err = Cluster::run(ClusterCfg::zero_cost(2), |node| {
        node.comm().alltoallv(vec![vec![]])?; // needs 2 parts
        Ok(())
    })
    .unwrap_err();
    assert!(matches!(err, ClusterError::Comm(_)), "got {err:?}");
}

#[test]
fn sendrecv_replace_rotates_ring() {
    let run = Cluster::run(ClusterCfg::zero_cost(P), |node| {
        let right = (node.rank() + 1) % node.nodes();
        let left = (node.rank() + node.nodes() - 1) % node.nodes();
        let got = node
            .comm()
            .sendrecv_replace(vec![node.rank() as u8], right, left, 5)?;
        Ok(got[0] as usize)
    })
    .unwrap();
    for (me, got) in run.results.iter().enumerate() {
        assert_eq!(*got, (me + P - 1) % P);
    }
}

#[test]
fn reductions() {
    let run = Cluster::run(ClusterCfg::zero_cost(P), |node| {
        let sum = node.comm().allreduce_sum(node.rank() as u64)?;
        let max = node.comm().allreduce_max(node.rank() as u64)?;
        let all = node.comm().allgather_u64(node.rank() as u64 * 2)?;
        Ok((sum, max, all))
    })
    .unwrap();
    let expect_sum = (0..P as u64).sum::<u64>();
    for (sum, max, all) in run.results {
        assert_eq!(sum, expect_sum);
        assert_eq!(max, P as u64 - 1);
        assert_eq!(all, (0..P as u64).map(|r| r * 2).collect::<Vec<_>>());
    }
}

#[test]
fn concurrent_stage_threads_share_communicator() {
    // Each node runs two threads: one streams data to the right neighbor,
    // one receives from the left — the disjoint send/receive pipeline
    // pattern, expressed directly against the communicator.
    const MSGS: usize = 200;
    let run = Cluster::run(ClusterCfg::zero_cost(4), |node| {
        let right = (node.rank() + 1) % node.nodes();
        let comm_tx = node.comm().clone();
        let comm_rx = node.comm().clone();
        let tx = std::thread::spawn(move || -> Result<(), ClusterError> {
            for i in 0..MSGS {
                comm_tx.send(right, 77, vec![(i % 251) as u8])?;
            }
            Ok(())
        });
        let rx = std::thread::spawn(move || -> Result<u64, ClusterError> {
            let mut sum = 0u64;
            for _ in 0..MSGS {
                let m = comm_rx.recv(None, 77)?;
                sum += m.payload[0] as u64;
            }
            Ok(sum)
        });
        tx.join().expect("tx thread")?;
        let sum = rx.join().expect("rx thread")?;
        Ok(sum)
    })
    .unwrap();
    let expect: u64 = (0..MSGS).map(|i| (i % 251) as u64).sum();
    for s in run.results {
        assert_eq!(s, expect);
    }
}

#[test]
fn node_error_poisons_cluster() {
    let err = Cluster::run(ClusterCfg::zero_cost(3), |node| {
        if node.rank() == 1 {
            return Err(ClusterError::Node {
                rank: 1,
                message: "synthetic".into(),
            });
        }
        // Other nodes block on a message that will never come; poisoning
        // must wake them.
        node.comm().recv(Some(1), 9)?;
        Ok(())
    })
    .unwrap_err();
    match err {
        ClusterError::Node { rank, .. } => assert_eq!(rank, 1),
        other => panic!("expected root-cause node error, got {other:?}"),
    }
}

#[test]
fn node_panic_poisons_cluster() {
    let err = Cluster::run(ClusterCfg::zero_cost(3), |node| {
        if node.rank() == 2 {
            panic!("synthetic node panic");
        }
        node.comm().recv(Some(2), 9)?;
        Ok(())
    })
    .unwrap_err();
    match err {
        ClusterError::NodePanic { rank, message } => {
            assert_eq!(rank, 2);
            assert!(message.contains("synthetic"));
        }
        other => panic!("expected panic error, got {other:?}"),
    }
}

#[test]
fn zero_node_cluster_rejected() {
    let err = Cluster::run(ClusterCfg::zero_cost(0), |_node| Ok(())).unwrap_err();
    assert!(matches!(err, ClusterError::Config(_)));
}

#[test]
fn single_node_cluster_works() {
    let run = Cluster::run(ClusterCfg::zero_cost(1), |node| {
        // Self-send via alltoallv local part.
        let recv = node.comm().alltoallv(vec![vec![42]])?;
        assert_eq!(recv, vec![vec![42]]);
        node.comm().barrier()?;
        Ok(node.comm().allreduce_sum(7)?)
    })
    .unwrap();
    assert_eq!(run.results, vec![7]);
}

#[test]
fn traffic_counters_reported() {
    let run = Cluster::run(ClusterCfg::zero_cost(2), |node| {
        if node.rank() == 0 {
            node.comm().send(1, 1, vec![0; 1000])?;
        } else {
            node.comm().recv(Some(0), 1)?;
        }
        node.comm().barrier()?;
        Ok(())
    })
    .unwrap();
    assert!(run.traffic[0].bytes_sent >= 1000);
    // Node 1 sent only barrier control traffic.
    assert!(run.traffic[1].bytes_sent < 100);
}

#[test]
fn network_cost_slows_transfers() {
    let send_one = |net: NetCfg| {
        let t0 = Instant::now();
        Cluster::run(ClusterCfg { nodes: 2, net }, |node| {
            if node.rank() == 0 {
                node.comm().send(1, 1, vec![0; 100_000])?;
            } else {
                node.comm().recv(Some(0), 1)?;
            }
            Ok(())
        })
        .unwrap();
        t0.elapsed()
    };
    let free = send_one(NetCfg::zero());
    // 100 kB at 2 MB/s = 50 ms.
    let slow = send_one(NetCfg::new(Duration::ZERO, 2_000_000.0));
    assert!(slow >= Duration::from_millis(45), "slow run took {slow:?}");
    assert!(free < slow, "free {free:?} vs slow {slow:?}");
}
