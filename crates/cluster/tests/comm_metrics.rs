//! Tests of the communicator's metrics instrumentation.

use std::sync::Arc;

use fg_cluster::{Cluster, ClusterCfg};
use fg_core::MetricsRegistry;

#[test]
fn run_with_metrics_counts_peer_traffic_and_collectives() {
    const NODES: usize = 3;
    let registry = Arc::new(MetricsRegistry::new());
    let run =
        Cluster::run_with_metrics(ClusterCfg::zero_cost(NODES), Arc::clone(&registry), |ctx| {
            let comm = ctx.comm();
            // One point-to-point message to the next rank.
            let next = (ctx.rank() + 1) % ctx.nodes();
            let prev = (ctx.rank() + ctx.nodes() - 1) % ctx.nodes();
            comm.send(next, 7, vec![0u8; 100])?;
            comm.recv(Some(prev), 7)?;
            // One of each instrumented collective.
            comm.barrier()?;
            comm.allgather(vec![ctx.rank() as u8])?;
            comm.alltoallv(vec![vec![1u8; 10]; ctx.nodes()])?;
            Ok(())
        })
        .unwrap();

    let m = &run.metrics;
    // Every node sent its 100-byte point-to-point message to its neighbor,
    // plus collective-internal traffic on the same links.
    for rank in 0..NODES {
        let next = (rank + 1) % NODES;
        let bytes = m.counter(&format!("comm/bytes/{rank}->{next}")).unwrap();
        assert!(bytes >= 100, "rank {rank} sent {bytes} bytes");
        assert!(m.counter(&format!("comm/msgs/{rank}->{next}")).unwrap() >= 1);
    }
    // Collective latency histograms are labelled per rank, so each one
    // holds exactly one sample per collective call that rank made — the
    // count is per-operation, not multiplied by the cluster size.
    for rank in 0..NODES {
        for op in ["barrier", "allgather", "alltoallv"] {
            let name = format!("comm/{op}_ns/r{rank}");
            let h = m.histogram(&name).unwrap();
            assert_eq!(h.count, 1, "{name}");
        }
        // One point-to-point send and one receive per rank.
        assert_eq!(
            m.histogram(&format!("comm/send_ns/r{rank}")).unwrap().count,
            1
        );
        assert_eq!(
            m.histogram(&format!("comm/recv_wait_ns/r{rank}"))
                .unwrap()
                .count,
            1
        );
    }
    // Metric totals agree with the fabric's own traffic accounting.
    let fabric_bytes: u64 = run.traffic.iter().map(|t| t.bytes_sent).sum();
    let metric_bytes: u64 = m
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("comm/bytes/"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(fabric_bytes, metric_bytes);
}

#[test]
fn plain_run_collects_no_metrics() {
    let run = Cluster::run(ClusterCfg::zero_cost(2), |ctx| {
        ctx.comm().barrier()?;
        Ok(())
    })
    .unwrap();
    assert!(run.metrics.is_empty());
}
