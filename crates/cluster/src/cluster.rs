//! Launching a simulated cluster: one OS thread per node, message-passing
//! only.
//!
//! The paper's platform is "a distributed-memory cluster in which each node
//! can run multiple threads" (§I).  [`Cluster::run`] reproduces that: the
//! node function receives a [`NodeCtx`] with its rank and communicator and
//! typically builds FG [`Program`](fg_core::Program)s that spawn the node's
//! stage threads.  Nodes share nothing except the communicator (enforced by
//! `Send` bounds and the absence of any other shared handle in the API).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use fg_core::metrics::{MetricsRegistry, MetricsSnapshot};
use fg_core::TraceSink;

use crate::comm::Communicator;
use crate::cost::NetCfg;
use crate::fabric::{Fabric, NodeTraffic};
use crate::{ClusterError, CommError};

/// Cluster-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterCfg {
    /// Number of nodes (`P` in the paper).
    pub nodes: usize,
    /// Interconnect cost model.
    pub net: NetCfg,
}

impl ClusterCfg {
    /// A free-network cluster of `nodes` nodes (for tests).
    pub fn zero_cost(nodes: usize) -> Self {
        ClusterCfg {
            nodes,
            net: NetCfg::zero(),
        }
    }
}

/// Observability wiring for a cluster run: one metrics registry **per
/// rank** (the shape a real distributed deployment has — each process owns
/// its registry and ships snapshots home) and an optional shared trace
/// sink whose rings are tagged with each rank's track group.
#[derive(Clone)]
pub struct ClusterObs {
    /// Per-rank registries, indexed by rank; must match the cluster size.
    pub registries: Vec<Arc<MetricsRegistry>>,
    /// Span recording for communicator sends/recvs/collectives, and for
    /// node functions to install on their FG programs (via
    /// [`NodeCtx::trace`]).
    pub trace: Option<Arc<TraceSink>>,
}

impl ClusterObs {
    /// Fresh per-rank registries for a cluster of `nodes`, no tracing.
    pub fn per_node(nodes: usize) -> ClusterObs {
        ClusterObs {
            registries: (0..nodes)
                .map(|_| Arc::new(MetricsRegistry::new()))
                .collect(),
            trace: None,
        }
    }

    /// Attach a trace sink (builder style).
    pub fn with_trace(mut self, sink: Arc<TraceSink>) -> ClusterObs {
        self.trace = Some(sink);
        self
    }
}

/// Everything a node function gets: identity, connectivity, and (when the
/// run is observed) its observability handles.
pub struct NodeCtx {
    comm: Communicator,
    registry: Option<Arc<MetricsRegistry>>,
    trace: Option<Arc<TraceSink>>,
}

impl NodeCtx {
    /// This node's rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.comm.nodes()
    }

    /// The node's communicator (clone it into stages freely).
    pub fn comm(&self) -> &Communicator {
        &self.comm
    }

    /// This node's metrics registry, when launched with
    /// [`Cluster::run_observed`] — install it on the node's FG programs so
    /// stage metrics land next to the rank's `comm/*` metrics.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.registry.as_ref()
    }

    /// The cluster's trace sink, when the run is observed with tracing —
    /// install it on the node's FG programs (with
    /// [`Program::set_trace_group`](fg_core::Program::set_trace_group) set
    /// to this rank) so pipeline spans join the comm spans in one export.
    pub fn trace(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }
}

/// Result of a cluster run: each node's return value plus traffic stats.
#[derive(Debug)]
pub struct ClusterRun<R> {
    /// Per-node results, indexed by rank.
    pub results: Vec<R>,
    /// Per-node traffic counters, indexed by rank.
    pub traffic: Vec<NodeTraffic>,
    /// Snapshot of the communication metrics (`comm/…` names), when the
    /// run was launched with [`Cluster::run_with_metrics`] or
    /// [`Cluster::run_observed`]; empty otherwise.  For observed runs this
    /// is the union of the per-rank snapshots (lossless: every `comm/*`
    /// name is rank-qualified).  Merge it into an FG
    /// [`Report`](fg_core::Report)'s metrics to render one dashboard.
    pub metrics: MetricsSnapshot,
    /// Per-rank registry snapshots when launched with
    /// [`Cluster::run_observed`]; empty otherwise.
    pub node_metrics: Vec<MetricsSnapshot>,
}

/// A simulated distributed-memory cluster.
pub struct Cluster;

impl Cluster {
    /// Run `f` on every node of a fresh cluster and collect the results.
    ///
    /// If any node returns an error or panics, the fabric is poisoned so
    /// blocked receives on other nodes fail promptly, and the first error
    /// is returned.
    pub fn run<R, F>(cfg: ClusterCfg, f: F) -> Result<ClusterRun<R>, ClusterError>
    where
        R: Send + 'static,
        F: Fn(NodeCtx) -> Result<R, ClusterError> + Send + Sync + 'static,
    {
        Self::launch(cfg, Launch::Plain, f)
    }

    /// Like [`Cluster::run`], but every node's communicator records per-peer
    /// byte/message counters and collective latency histograms into
    /// `registry` (under `comm/…` names); the returned
    /// [`ClusterRun::metrics`] carries the final snapshot.
    pub fn run_with_metrics<R, F>(
        cfg: ClusterCfg,
        registry: Arc<MetricsRegistry>,
        f: F,
    ) -> Result<ClusterRun<R>, ClusterError>
    where
        R: Send + 'static,
        F: Fn(NodeCtx) -> Result<R, ClusterError> + Send + Sync + 'static,
    {
        Self::launch(cfg, Launch::Shared(registry), f)
    }

    /// Like [`Cluster::run`], but with full per-node observability: each
    /// rank's communicator records into *its own* registry from
    /// `obs.registries`, and when `obs.trace` is set, sends/recvs and
    /// collectives record spans into a per-rank `node{rank}/comm` ring
    /// (grouped per node in the Chrome export).  Node functions see their
    /// handles via [`NodeCtx::registry`] / [`NodeCtx::trace`].  The
    /// returned [`ClusterRun::node_metrics`] holds one snapshot per rank.
    pub fn run_observed<R, F>(
        cfg: ClusterCfg,
        obs: ClusterObs,
        f: F,
    ) -> Result<ClusterRun<R>, ClusterError>
    where
        R: Send + 'static,
        F: Fn(NodeCtx) -> Result<R, ClusterError> + Send + Sync + 'static,
    {
        if obs.registries.len() != cfg.nodes {
            return Err(ClusterError::Config(format!(
                "ClusterObs has {} registries for {} nodes",
                obs.registries.len(),
                cfg.nodes
            )));
        }
        Self::launch(cfg, Launch::Observed(obs), f)
    }

    fn launch<R, F>(cfg: ClusterCfg, launch: Launch, f: F) -> Result<ClusterRun<R>, ClusterError>
    where
        R: Send + 'static,
        F: Fn(NodeCtx) -> Result<R, ClusterError> + Send + Sync + 'static,
    {
        if cfg.nodes == 0 {
            return Err(ClusterError::Config(
                "cluster needs at least one node".into(),
            ));
        }
        let fabric = Fabric::new(cfg.nodes, cfg.net);
        let f = Arc::new(f);

        let mut handles = Vec::with_capacity(cfg.nodes);
        for rank in 0..cfg.nodes {
            let fabric = Arc::clone(&fabric);
            let f = Arc::clone(&f);
            let launch = launch.clone();
            let handle = std::thread::Builder::new()
                .name(format!("node{rank}"))
                .spawn(move || {
                    let (comm, registry, trace) = match &launch {
                        Launch::Plain => (Communicator::new(Arc::clone(&fabric), rank), None, None),
                        Launch::Shared(reg) => (
                            Communicator::with_metrics(Arc::clone(&fabric), rank, reg),
                            None,
                            None,
                        ),
                        Launch::Observed(obs) => {
                            let reg = &obs.registries[rank];
                            let mut comm =
                                Communicator::with_metrics(Arc::clone(&fabric), rank, reg);
                            if let Some(sink) = &obs.trace {
                                comm.attach_trace(sink);
                            }
                            (comm, Some(Arc::clone(reg)), obs.trace.clone())
                        }
                    };
                    let ctx = NodeCtx {
                        comm,
                        registry,
                        trace,
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(ctx)));
                    match outcome {
                        Ok(Ok(r)) => Ok(r),
                        Ok(Err(e)) => {
                            fabric.poison();
                            Err(e)
                        }
                        Err(payload) => {
                            fabric.poison();
                            let message = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "<non-string panic payload>".into());
                            Err(ClusterError::NodePanic { rank, message })
                        }
                    }
                })
                .map_err(|e| ClusterError::Config(format!("failed to spawn node: {e}")))?;
            handles.push(handle);
        }

        let mut results = Vec::with_capacity(cfg.nodes);
        let mut first_err: Option<ClusterError> = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(r)) => results.push(Some(r)),
                Ok(Err(e)) => {
                    results.push(None);
                    // Prefer a root-cause error over secondary ones (nodes
                    // that merely observed the poisoned fabric or their FG
                    // program being cancelled).
                    if first_err.is_none()
                        || (!is_secondary_err(&e)
                            && first_err.as_ref().map(is_secondary_err).unwrap_or(false))
                    {
                        first_err = Some(e);
                    }
                }
                Err(_) => {
                    results.push(None);
                    if first_err.is_none() {
                        first_err =
                            Some(ClusterError::Config("node thread wrapper panicked".into()));
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let traffic = (0..cfg.nodes).map(|n| fabric.traffic(n)).collect();
        let (metrics, node_metrics) = match launch {
            Launch::Plain => (MetricsSnapshot::default(), Vec::new()),
            Launch::Shared(reg) => (reg.snapshot(), Vec::new()),
            Launch::Observed(obs) => {
                let node_metrics: Vec<MetricsSnapshot> =
                    obs.registries.iter().map(|r| r.snapshot()).collect();
                // Per-rank names are disjoint, so the union loses nothing.
                let mut merged = MetricsSnapshot::default();
                for snap in &node_metrics {
                    merged.merge(snap);
                }
                (merged, node_metrics)
            }
        };
        Ok(ClusterRun {
            results: results.into_iter().map(|r| r.expect("no error")).collect(),
            traffic,
            metrics,
            node_metrics,
        })
    }
}

/// How a cluster run wires observability into its nodes.
#[derive(Clone)]
enum Launch {
    /// No metrics, no tracing.
    Plain,
    /// One shared registry for every rank (the pre-cluster-report shape;
    /// still lossless because all `comm/*` names are rank-qualified).
    Shared(Arc<MetricsRegistry>),
    /// Per-rank registries and optional tracing.
    Observed(ClusterObs),
}

/// Whether an error is a downstream symptom of another node's failure
/// rather than a root cause.
fn is_secondary_err(e: &ClusterError) -> bool {
    match e {
        ClusterError::Comm(CommError::Poisoned) => true,
        ClusterError::Node { message, .. } | ClusterError::NodePanic { message, .. } => {
            message.contains("poisoned") || message.contains("cancelled")
        }
        _ => false,
    }
}
