//! Launching a simulated cluster: one OS thread per node, message-passing
//! only.
//!
//! The paper's platform is "a distributed-memory cluster in which each node
//! can run multiple threads" (§I).  [`Cluster::run`] reproduces that: the
//! node function receives a [`NodeCtx`] with its rank and communicator and
//! typically builds FG [`Program`](fg_core::Program)s that spawn the node's
//! stage threads.  Nodes share nothing except the communicator (enforced by
//! `Send` bounds and the absence of any other shared handle in the API).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use fg_core::metrics::{MetricsRegistry, MetricsSnapshot};

use crate::comm::Communicator;
use crate::cost::NetCfg;
use crate::fabric::{Fabric, NodeTraffic};
use crate::{ClusterError, CommError};

/// Cluster-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterCfg {
    /// Number of nodes (`P` in the paper).
    pub nodes: usize,
    /// Interconnect cost model.
    pub net: NetCfg,
}

impl ClusterCfg {
    /// A free-network cluster of `nodes` nodes (for tests).
    pub fn zero_cost(nodes: usize) -> Self {
        ClusterCfg {
            nodes,
            net: NetCfg::zero(),
        }
    }
}

/// Everything a node function gets: identity and connectivity.
pub struct NodeCtx {
    comm: Communicator,
}

impl NodeCtx {
    /// This node's rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.comm.nodes()
    }

    /// The node's communicator (clone it into stages freely).
    pub fn comm(&self) -> &Communicator {
        &self.comm
    }
}

/// Result of a cluster run: each node's return value plus traffic stats.
#[derive(Debug)]
pub struct ClusterRun<R> {
    /// Per-node results, indexed by rank.
    pub results: Vec<R>,
    /// Per-node traffic counters, indexed by rank.
    pub traffic: Vec<NodeTraffic>,
    /// Snapshot of the communication metrics (`comm/…` names), when the
    /// run was launched with [`Cluster::run_with_metrics`]; empty
    /// otherwise.  Merge it into an FG
    /// [`Report`](fg_core::Report)'s metrics to render one dashboard.
    pub metrics: MetricsSnapshot,
}

/// A simulated distributed-memory cluster.
pub struct Cluster;

impl Cluster {
    /// Run `f` on every node of a fresh cluster and collect the results.
    ///
    /// If any node returns an error or panics, the fabric is poisoned so
    /// blocked receives on other nodes fail promptly, and the first error
    /// is returned.
    pub fn run<R, F>(cfg: ClusterCfg, f: F) -> Result<ClusterRun<R>, ClusterError>
    where
        R: Send + 'static,
        F: Fn(NodeCtx) -> Result<R, ClusterError> + Send + Sync + 'static,
    {
        Self::launch(cfg, None, f)
    }

    /// Like [`Cluster::run`], but every node's communicator records per-peer
    /// byte/message counters and collective latency histograms into
    /// `registry` (under `comm/…` names); the returned
    /// [`ClusterRun::metrics`] carries the final snapshot.
    pub fn run_with_metrics<R, F>(
        cfg: ClusterCfg,
        registry: Arc<MetricsRegistry>,
        f: F,
    ) -> Result<ClusterRun<R>, ClusterError>
    where
        R: Send + 'static,
        F: Fn(NodeCtx) -> Result<R, ClusterError> + Send + Sync + 'static,
    {
        Self::launch(cfg, Some(registry), f)
    }

    fn launch<R, F>(
        cfg: ClusterCfg,
        registry: Option<Arc<MetricsRegistry>>,
        f: F,
    ) -> Result<ClusterRun<R>, ClusterError>
    where
        R: Send + 'static,
        F: Fn(NodeCtx) -> Result<R, ClusterError> + Send + Sync + 'static,
    {
        if cfg.nodes == 0 {
            return Err(ClusterError::Config(
                "cluster needs at least one node".into(),
            ));
        }
        let fabric = Fabric::new(cfg.nodes, cfg.net);
        let f = Arc::new(f);

        let mut handles = Vec::with_capacity(cfg.nodes);
        for rank in 0..cfg.nodes {
            let fabric = Arc::clone(&fabric);
            let f = Arc::clone(&f);
            let registry = registry.clone();
            let handle = std::thread::Builder::new()
                .name(format!("node{rank}"))
                .spawn(move || {
                    let comm = match &registry {
                        Some(reg) => Communicator::with_metrics(Arc::clone(&fabric), rank, reg),
                        None => Communicator::new(Arc::clone(&fabric), rank),
                    };
                    let ctx = NodeCtx { comm };
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(ctx)));
                    match outcome {
                        Ok(Ok(r)) => Ok(r),
                        Ok(Err(e)) => {
                            fabric.poison();
                            Err(e)
                        }
                        Err(payload) => {
                            fabric.poison();
                            let message = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "<non-string panic payload>".into());
                            Err(ClusterError::NodePanic { rank, message })
                        }
                    }
                })
                .map_err(|e| ClusterError::Config(format!("failed to spawn node: {e}")))?;
            handles.push(handle);
        }

        let mut results = Vec::with_capacity(cfg.nodes);
        let mut first_err: Option<ClusterError> = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(r)) => results.push(Some(r)),
                Ok(Err(e)) => {
                    results.push(None);
                    // Prefer a root-cause error over secondary ones (nodes
                    // that merely observed the poisoned fabric or their FG
                    // program being cancelled).
                    if first_err.is_none()
                        || (!is_secondary_err(&e)
                            && first_err.as_ref().map(is_secondary_err).unwrap_or(false))
                    {
                        first_err = Some(e);
                    }
                }
                Err(_) => {
                    results.push(None);
                    if first_err.is_none() {
                        first_err =
                            Some(ClusterError::Config("node thread wrapper panicked".into()));
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let traffic = (0..cfg.nodes).map(|n| fabric.traffic(n)).collect();
        Ok(ClusterRun {
            results: results.into_iter().map(|r| r.expect("no error")).collect(),
            traffic,
            metrics: registry.map(|r| r.snapshot()).unwrap_or_default(),
        })
    }
}

/// Whether an error is a downstream symptom of another node's failure
/// rather than a root cause.
fn is_secondary_err(e: &ClusterError) -> bool {
    match e {
        ClusterError::Comm(CommError::Poisoned) => true,
        ClusterError::Node { message, .. } | ClusterError::NodePanic { message, .. } => {
            message.contains("poisoned") || message.contains("cancelled")
        }
        _ => false,
    }
}
