//! The thread-safe, MPI-like communicator handed to every node.
//!
//! The paper's programs use ChaMPIon/Pro, a thread-safe commercial MPI: FG
//! stages on different threads of one node send and receive concurrently.
//! [`Communicator`] reproduces the subset dsort and csort need:
//!
//! * tagged point-to-point `send`/`recv` with `ANY_SOURCE` receives,
//! * `sendrecv_replace`,
//! * `alltoallv` (the generalized all-to-all of the even columnsort steps),
//! * `broadcast`, `gather`, `allgather`, `barrier`, and u64 reductions.
//!
//! Point-to-point operations may be used concurrently from any number of
//! threads per node.  Collectives follow the MPI contract: every node calls
//! the same collectives in the same order (from one thread at a time per
//! node); point-to-point traffic may interleave freely with them because
//! collectives use a reserved tag space.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fg_core::metrics::{Counter, Histogram, MetricsRegistry};
use fg_core::trace::COMM_PIPELINE;
use fg_core::{SpanRing, TraceCtx, TraceKind, TraceSink};

use crate::fabric::{Fabric, NodeTraffic};
use crate::CommError;

/// Tags are user-chosen for point-to-point messages; collectives reserve
/// tags with the top bit set.
const COLLECTIVE_BIT: u64 = 1 << 63;
/// Maximum user tag value.
pub const MAX_USER_TAG: u64 = COLLECTIVE_BIT - 1;

/// Trace ids for collectives live in a reserved namespace so every rank's
/// span for collective call `seq` shares one id — the Chrome export then
/// stitches one cross-rank flow per collective — without colliding with
/// buffer trace ids (which count up from 1).
const COLLECTIVE_TRACE_BIT: u64 = 1 << 62;

/// A node's handle to the cluster interconnect.  Cheap to clone; clones
/// share the node's identity, collective sequence, and trace ring.
#[derive(Clone)]
pub struct Communicator {
    fabric: Arc<Fabric>,
    rank: usize,
    /// Collective call sequence number; identical across nodes because all
    /// nodes invoke collectives in the same order.
    coll_seq: Arc<AtomicU64>,
    /// Pre-resolved metric handles; `None` when the cluster runs without a
    /// registry, making every fire site a single never-taken branch.
    metrics: Option<Arc<CommMetrics>>,
    /// Span recording; `None` when the cluster runs untraced.
    trace: Option<Arc<CommTrace>>,
}

/// Metric handles of one node's communicator, resolved once at
/// construction so the per-message cost is only relaxed atomics.
///
/// Names: per-peer byte/message counters `comm/bytes/{src}->{dst}` and
/// `comm/msgs/{src}->{dst}` (which include collective-internal traffic, so
/// their totals match the fabric's byte accounting), plus **per-rank**
/// latency histograms `comm/{send,recv_wait}_ns/r{rank}` for user
/// point-to-point calls and `comm/{barrier,broadcast,allgather,alltoallv}_ns/r{rank}`
/// for collectives.  Labelling by rank keeps each histogram's `count` equal
/// to the number of operations *that rank* performed — merging N per-node
/// registries is lossless, and a cluster-wide view sums the per-rank rows
/// instead of multiplying counts by N as a shared histogram would.
struct CommMetrics {
    bytes_to: Vec<Arc<Counter>>,
    msgs_to: Vec<Arc<Counter>>,
    send_ns: Arc<Histogram>,
    recv_wait_ns: Arc<Histogram>,
    barrier_ns: Arc<Histogram>,
    broadcast_ns: Arc<Histogram>,
    allgather_ns: Arc<Histogram>,
    alltoallv_ns: Arc<Histogram>,
}

impl CommMetrics {
    fn new(registry: &MetricsRegistry, rank: usize, nodes: usize) -> Self {
        CommMetrics {
            bytes_to: (0..nodes)
                .map(|dst| registry.counter(&format!("comm/bytes/{rank}->{dst}")))
                .collect(),
            msgs_to: (0..nodes)
                .map(|dst| registry.counter(&format!("comm/msgs/{rank}->{dst}")))
                .collect(),
            send_ns: registry.histogram(&format!("comm/send_ns/r{rank}")),
            recv_wait_ns: registry.histogram(&format!("comm/recv_wait_ns/r{rank}")),
            barrier_ns: registry.histogram(&format!("comm/barrier_ns/r{rank}")),
            broadcast_ns: registry.histogram(&format!("comm/broadcast_ns/r{rank}")),
            allgather_ns: registry.histogram(&format!("comm/allgather_ns/r{rank}")),
            alltoallv_ns: registry.histogram(&format!("comm/alltoallv_ns/r{rank}")),
        }
    }
}

/// One node's communication flight recorder: a dedicated `node{rank}/comm`
/// ring (registered in the rank's track group) shared by every clone of the
/// node's communicator, plus the node's point-to-point send sequence.
struct CommTrace {
    ring: Arc<SpanRing>,
    send_seq: AtomicU64,
}

/// A received message: its payload, the rank that sent it, and the trace
/// context it carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sender's rank.
    pub src: usize,
    /// The trace context the sender attached ([`TraceCtx::NONE`] on
    /// untraced runs).
    pub ctx: TraceCtx,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

impl Communicator {
    pub(crate) fn new(fabric: Arc<Fabric>, rank: usize) -> Self {
        Communicator {
            fabric,
            rank,
            coll_seq: Arc::new(AtomicU64::new(0)),
            metrics: None,
            trace: None,
        }
    }

    pub(crate) fn with_metrics(
        fabric: Arc<Fabric>,
        rank: usize,
        registry: &MetricsRegistry,
    ) -> Self {
        let nodes = fabric.nodes();
        Communicator {
            fabric,
            rank,
            coll_seq: Arc::new(AtomicU64::new(0)),
            metrics: Some(Arc::new(CommMetrics::new(registry, rank, nodes))),
            trace: None,
        }
    }

    /// Attach span recording: registers a `node{rank}/comm` ring in this
    /// rank's track group on `sink`.  Every clone made afterwards shares
    /// the ring.
    pub(crate) fn attach_trace(&mut self, sink: &TraceSink) {
        let ring =
            sink.register_thread_in_group(format!("node{}/comm", self.rank), self.rank as u32);
        self.trace = Some(Arc::new(CommTrace {
            ring,
            send_seq: AtomicU64::new(0),
        }));
    }

    /// Instrumented counterpart of `fabric.send` for traffic originating at
    /// this node; all sends (point-to-point and collective-internal) route
    /// through here.
    fn send_raw(
        &self,
        dst: usize,
        tag: u64,
        ctx: TraceCtx,
        payload: Vec<u8>,
    ) -> Result<(), CommError> {
        // Self-sends never cross the interconnect; keep the counters in
        // agreement with the fabric's traffic accounting, which also
        // excludes them.
        if let Some(m) = self.metrics.as_ref().filter(|_| dst != self.rank) {
            m.bytes_to[dst].add(payload.len() as u64);
            m.msgs_to[dst].inc();
        }
        self.fabric.send(self.rank, dst, tag, ctx, payload)
    }

    /// Observe one collective call: time it into `pick(metrics)` and record
    /// one `kind` span under the collective's shared cross-rank trace id.
    ///
    /// The trace id is derived from the collective sequence number *before*
    /// `op` consumes it — all ranks observe the same call under the same id,
    /// which is what joins their spans into one Perfetto flow.  `op` is the
    /// *unobserved* implementation; composed collectives (allgather is
    /// gather then broadcast) call the `_impl` variants internally so each
    /// public call records exactly one span and one histogram entry per rank.
    fn collective<T>(
        &self,
        kind: TraceKind,
        pick: impl Fn(&CommMetrics) -> &Histogram,
        op: impl FnOnce() -> Result<T, CommError>,
    ) -> Result<T, CommError> {
        let seq = self.coll_seq.load(Ordering::SeqCst);
        let start_ns = self.trace.as_ref().map(|t| t.ring.now_ns());
        let timer = self.metrics.as_ref().map(|_| Instant::now());
        let out = op()?;
        if let (Some(m), Some(t0)) = (&self.metrics, timer) {
            pick(m).record_duration(t0.elapsed());
        }
        if let (Some(t), Some(start_ns)) = (&self.trace, start_ns) {
            let end_ns = t.ring.now_ns();
            t.ring.record(
                kind,
                COMM_PIPELINE,
                seq,
                COLLECTIVE_TRACE_BIT | seq,
                start_ns,
                end_ns,
            );
        }
        Ok(out)
    }

    /// This node's rank in `0..nodes()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.fabric.nodes()
    }

    /// Traffic sent so far by `node`.
    pub fn traffic(&self, node: usize) -> NodeTraffic {
        self.fabric.traffic(node)
    }

    fn check_tag(tag: u64) -> Result<(), CommError> {
        if tag > MAX_USER_TAG {
            Err(CommError::BadTag(tag))
        } else {
            Ok(())
        }
    }

    /// Send `payload` to `dst` with a user `tag`.  Buffered: completes
    /// without waiting for the receiver (after charging the network cost).
    pub fn send(&self, dst: usize, tag: u64, payload: Vec<u8>) -> Result<(), CommError> {
        self.send_traced(dst, tag, payload, 0)
    }

    /// [`Communicator::send`], propagating the sender's buffer `trace_id`
    /// in the message's [`TraceCtx`]: the receiving rank's `comm-recv` span
    /// then shares the id, stitching the buffer's journey across ranks in
    /// the Chrome export.  `trace_id = 0` sends untraced (same as `send`).
    pub fn send_traced(
        &self,
        dst: usize,
        tag: u64,
        payload: Vec<u8>,
        trace_id: u64,
    ) -> Result<(), CommError> {
        Self::check_tag(tag)?;
        let (ctx, start_ns) = match &self.trace {
            Some(t) => {
                let seq = t.send_seq.fetch_add(1, Ordering::Relaxed);
                (
                    TraceCtx {
                        origin: self.rank as u32,
                        trace_id,
                        seq,
                    },
                    Some(t.ring.now_ns()),
                )
            }
            None => (TraceCtx::NONE, None),
        };
        let timer = self.metrics.as_ref().map(|_| Instant::now());
        self.send_raw(dst, tag, ctx, payload)?;
        if let (Some(m), Some(t0)) = (&self.metrics, timer) {
            m.send_ns.record_duration(t0.elapsed());
        }
        if let (Some(t), Some(start_ns)) = (&self.trace, start_ns) {
            t.ring.record(
                TraceKind::CommSend,
                COMM_PIPELINE,
                ctx.seq,
                trace_id,
                start_ns,
                t.ring.now_ns(),
            );
        }
        Ok(())
    }

    /// Receive the next message with `tag` from `src` (or from any source
    /// when `src` is `None`).  Blocks until one arrives.
    pub fn recv(&self, src: Option<usize>, tag: u64) -> Result<Message, CommError> {
        Self::check_tag(tag)?;
        let start_ns = self.trace.as_ref().map(|t| t.ring.now_ns());
        let timer = self.metrics.as_ref().map(|_| Instant::now());
        let env = self.fabric.recv(self.rank, src, tag)?;
        if let (Some(m), Some(t0)) = (&self.metrics, timer) {
            m.recv_wait_ns.record_duration(t0.elapsed());
        }
        if let (Some(t), Some(start_ns)) = (&self.trace, start_ns) {
            // Record under the *sender's* trace context: this is the other
            // half of the cross-rank flow.
            t.ring.record(
                TraceKind::CommRecv,
                COMM_PIPELINE,
                env.ctx.seq,
                env.ctx.trace_id,
                start_ns,
                t.ring.now_ns(),
            );
        }
        Ok(Message {
            src: env.src,
            ctx: env.ctx,
            payload: env.payload,
        })
    }

    /// MPI_Sendrecv_replace: send `payload` to `dst` while receiving a
    /// same-tagged message from `src`; returns the received payload.
    pub fn sendrecv_replace(
        &self,
        payload: Vec<u8>,
        dst: usize,
        src: usize,
        tag: u64,
    ) -> Result<Vec<u8>, CommError> {
        Self::check_tag(tag)?;
        let ctx = match &self.trace {
            Some(t) => TraceCtx {
                origin: self.rank as u32,
                trace_id: 0,
                seq: t.send_seq.fetch_add(1, Ordering::Relaxed),
            },
            None => TraceCtx::NONE,
        };
        self.send_raw(dst, tag, ctx, payload)?;
        let env = self.fabric.recv(self.rank, Some(src), tag)?;
        Ok(env.payload)
    }

    /// Reserve the next collective tag; the sequence half is also the
    /// collective's cross-rank span identity.
    fn next_coll_tag(&self) -> u64 {
        COLLECTIVE_BIT | self.coll_seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Untraced send used inside collectives: the collective's own span
    /// covers the whole call, so internal messages carry only the
    /// collective's identity, not a per-message one.
    fn coll_send(&self, dst: usize, tag: u64, payload: Vec<u8>) -> Result<(), CommError> {
        let ctx = TraceCtx {
            origin: self.rank as u32,
            trace_id: 0,
            seq: tag & !COLLECTIVE_BIT,
        };
        self.send_raw(dst, tag, ctx, payload)
    }

    /// Synchronize all nodes.
    pub fn barrier(&self) -> Result<(), CommError> {
        self.collective(
            TraceKind::Barrier,
            |m| &m.barrier_ns,
            || self.barrier_impl(),
        )
    }

    fn barrier_impl(&self) -> Result<(), CommError> {
        let tag = self.next_coll_tag();
        // Gather empty payloads at 0, then 0 releases everyone.
        if self.rank == 0 {
            for _ in 1..self.nodes() {
                self.fabric.recv(0, None, tag)?;
            }
            for dst in 1..self.nodes() {
                self.coll_send(dst, tag, Vec::new())?;
            }
        } else {
            self.coll_send(0, tag, Vec::new())?;
            self.fabric.recv(self.rank, Some(0), tag)?;
        }
        Ok(())
    }

    /// Broadcast `data` from `root` to every node; returns the broadcast
    /// payload on all nodes (`data` is ignored on non-roots).
    pub fn broadcast(&self, root: usize, data: &[u8]) -> Result<Vec<u8>, CommError> {
        self.collective(
            TraceKind::Broadcast,
            |m| &m.broadcast_ns,
            || self.broadcast_impl(root, data),
        )
    }

    fn broadcast_impl(&self, root: usize, data: &[u8]) -> Result<Vec<u8>, CommError> {
        let tag = self.next_coll_tag();
        if self.rank == root {
            for dst in 0..self.nodes() {
                if dst != root {
                    self.coll_send(dst, tag, data.to_vec())?;
                }
            }
            Ok(data.to_vec())
        } else {
            Ok(self.fabric.recv(self.rank, Some(root), tag)?.payload)
        }
    }

    /// Gather each node's `data` at `root`; returns `Some(parts)` (indexed
    /// by rank) at the root and `None` elsewhere.
    pub fn gather(&self, root: usize, data: Vec<u8>) -> Result<Option<Vec<Vec<u8>>>, CommError> {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let mut parts: Vec<Vec<u8>> = vec![Vec::new(); self.nodes()];
            parts[root] = data;
            for _ in 0..self.nodes() - 1 {
                let env = self.fabric.recv(root, None, tag)?;
                parts[env.src] = env.payload;
            }
            Ok(Some(parts))
        } else {
            self.coll_send(root, tag, data)?;
            Ok(None)
        }
    }

    /// All nodes contribute `data`; all nodes receive every node's
    /// contribution, indexed by rank.
    pub fn allgather(&self, data: Vec<u8>) -> Result<Vec<Vec<u8>>, CommError> {
        self.collective(
            TraceKind::Allgather,
            |m| &m.allgather_ns,
            || {
                // gather at 0 + broadcast of the length-prefixed concatenation.
                // Composed from the unobserved internals so the public call
                // records one span, not nested broadcast spans.
                let gathered = self.gather(0, data)?;
                let packed = match gathered {
                    Some(parts) => pack_parts(&parts),
                    None => Vec::new(),
                };
                let bytes = self.broadcast_impl(0, &packed)?;
                unpack_parts(&bytes)
            },
        )
    }

    /// MPI_Alltoallv: send `parts[i]` to node `i` (including `parts[rank]`
    /// to self, delivered locally for free); returns the parts received,
    /// indexed by sender rank.
    pub fn alltoallv(&self, mut parts: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, CommError> {
        if parts.len() != self.nodes() {
            return Err(CommError::BadShape(format!(
                "alltoallv needs {} parts, got {}",
                self.nodes(),
                parts.len()
            )));
        }
        self.collective(
            TraceKind::Alltoallv,
            |m| &m.alltoallv_ns,
            move || {
                let tag = self.next_coll_tag();
                let mine = std::mem::take(&mut parts[self.rank]);
                for (dst, part) in parts.iter_mut().enumerate() {
                    if dst != self.rank {
                        self.coll_send(dst, tag, std::mem::take(part))?;
                    }
                }
                let mut received: Vec<Vec<u8>> = vec![Vec::new(); self.nodes()];
                received[self.rank] = mine;
                for _ in 0..self.nodes() - 1 {
                    let env = self.fabric.recv(self.rank, None, tag)?;
                    received[env.src] = env.payload;
                }
                Ok(received)
            },
        )
    }

    /// Sum a u64 across all nodes (everyone gets the result).
    pub fn allreduce_sum(&self, x: u64) -> Result<u64, CommError> {
        Ok(self.allgather_u64(x)?.into_iter().sum())
    }

    /// Max of a u64 across all nodes (everyone gets the result).
    pub fn allreduce_max(&self, x: u64) -> Result<u64, CommError> {
        Ok(self.allgather_u64(x)?.into_iter().max().unwrap_or(0))
    }

    /// Allgather a single u64 per node; result indexed by rank.
    pub fn allgather_u64(&self, x: u64) -> Result<Vec<u64>, CommError> {
        let parts = self.allgather(x.to_le_bytes().to_vec())?;
        parts
            .into_iter()
            .map(|p| {
                p.as_slice()
                    .try_into()
                    .map(u64::from_le_bytes)
                    .map_err(|_| CommError::BadShape("allgather_u64 payload".into()))
            })
            .collect()
    }
}

/// Length-prefixed concatenation of parts.
fn pack_parts(parts: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = parts.iter().map(|p| 8 + p.len()).sum();
    let mut out = Vec::with_capacity(8 + total);
    out.extend_from_slice(&(parts.len() as u64).to_le_bytes());
    for p in parts {
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(p);
    }
    out
}

fn unpack_parts(bytes: &[u8]) -> Result<Vec<Vec<u8>>, CommError> {
    let bad = || CommError::BadShape("malformed packed parts".into());
    let mut off = 0usize;
    let take_u64 = |off: &mut usize| -> Result<u64, CommError> {
        let end = *off + 8;
        let v = bytes.get(*off..end).ok_or_else(bad)?;
        *off = end;
        Ok(u64::from_le_bytes(v.try_into().expect("8 bytes")))
    };
    let n = take_u64(&mut off)? as usize;
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        let len = take_u64(&mut off)? as usize;
        let end = off.checked_add(len).ok_or_else(bad)?;
        parts.push(bytes.get(off..end).ok_or_else(bad)?.to_vec());
        off = end;
    }
    if off != bytes.len() {
        return Err(bad());
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let parts = vec![vec![1, 2, 3], vec![], vec![9; 100]];
        assert_eq!(unpack_parts(&pack_parts(&parts)).unwrap(), parts);
    }

    #[test]
    fn unpack_rejects_garbage() {
        assert!(unpack_parts(&[1, 2, 3]).is_err());
        // Claim one part of absurd length.
        let mut bytes = 1u64.to_le_bytes().to_vec();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(unpack_parts(&bytes).is_err());
        // Trailing junk.
        let mut ok = pack_parts(&[vec![1]]);
        ok.push(0);
        assert!(unpack_parts(&ok).is_err());
    }

    #[test]
    fn user_tag_range_enforced() {
        let fabric = Fabric::new(1, crate::NetCfg::zero());
        let comm = Communicator::new(fabric, 0);
        assert!(matches!(
            comm.send(0, COLLECTIVE_BIT, vec![]),
            Err(CommError::BadTag(_))
        ));
        assert!(comm.send(0, MAX_USER_TAG, vec![]).is_ok());
    }
}
