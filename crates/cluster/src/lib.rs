//! # fg-cluster: a simulated distributed-memory cluster
//!
//! The FG paper evaluates on a 16-node Beowulf cluster connected by Myrinet
//! and a thread-safe MPI.  This crate substitutes a **simulated cluster**
//! that preserves every property the FG programming model relies on:
//!
//! * each node is an isolated execution context (one OS thread that may
//!   spawn more — e.g. FG stage threads) sharing *nothing* with other nodes
//!   except messages;
//! * interprocessor communication is a **high-latency blocking operation**
//!   (a configurable `latency + bytes/bandwidth` cost charged as real sleep
//!   on the sending thread), so overlapping it with other work — FG's whole
//!   point — has a measurable effect;
//! * the communicator is **thread-safe**, like ChaMPIon/Pro: many stage
//!   threads per node may send and receive concurrently.
//!
//! ```
//! use fg_cluster::{Cluster, ClusterCfg};
//!
//! let run = Cluster::run(ClusterCfg::zero_cost(4), |node| {
//!     // Ring: send rank to the right neighbor, receive from the left.
//!     let right = (node.rank() + 1) % node.nodes();
//!     let left = (node.rank() + node.nodes() - 1) % node.nodes();
//!     node.comm().send(right, 1, vec![node.rank() as u8])?;
//!     let msg = node.comm().recv(Some(left), 1)?;
//!     Ok(msg.payload[0] as usize)
//! })
//! .unwrap();
//! assert_eq!(run.results, vec![3, 0, 1, 2]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cluster;
mod comm;
mod cost;
mod fabric;

pub use cluster::{Cluster, ClusterCfg, ClusterObs, ClusterRun, NodeCtx};
pub use comm::{Communicator, Message, MAX_USER_TAG};
pub use cost::NetCfg;
pub use fabric::NodeTraffic;

use std::fmt;

/// Errors from communicator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// Destination rank out of range.
    BadRank(usize),
    /// Tag outside the user tag range.
    BadTag(u64),
    /// Malformed collective payload or argument shape.
    BadShape(String),
    /// The fabric was poisoned because another node failed.
    Poisoned,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::BadRank(r) => write!(f, "rank {r} out of range"),
            CommError::BadTag(t) => write!(f, "tag {t:#x} outside user tag range"),
            CommError::BadShape(m) => write!(f, "malformed communication: {m}"),
            CommError::Poisoned => write!(f, "cluster fabric poisoned by a failed node"),
        }
    }
}

impl std::error::Error for CommError {}

/// Errors from running a cluster job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Invalid cluster configuration.
    Config(String),
    /// A communicator operation failed.
    Comm(CommError),
    /// A node function panicked.
    NodePanic {
        /// Rank of the panicking node.
        rank: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// An application-level failure reported by a node.
    Node {
        /// Rank of the failing node.
        rank: usize,
        /// The message the node reported.
        message: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Config(m) => write!(f, "cluster configuration error: {m}"),
            ClusterError::Comm(e) => write!(f, "communication error: {e}"),
            ClusterError::NodePanic { rank, message } => {
                write!(f, "node {rank} panicked: {message}")
            }
            ClusterError::Node { rank, message } => {
                if *rank == usize::MAX {
                    write!(f, "node failed: {message}")
                } else {
                    write!(f, "node {rank} failed: {message}")
                }
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<CommError> for ClusterError {
    fn from(e: CommError) -> Self {
        ClusterError::Comm(e)
    }
}
