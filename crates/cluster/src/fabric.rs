//! The message fabric connecting the simulated nodes: one mailbox per node,
//! tag- and source-matched receives, poisoning on node failure.
//!
//! Mailboxes are unbounded (buffered sends complete without waiting for the
//! receiver, like eager-mode MPI).  Real MPI switches to rendezvous flow
//! control for large messages; at simulation scale the sorts bound in-flight
//! data by their pipeline pools, so the simplification is safe, but extreme
//! artificial skew can grow a receiver's inbox up to the in-flight dataset.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use fg_core::TraceCtx;
use parking_lot::{Condvar, Mutex};

use crate::cost::NetCfg;
use crate::CommError;

/// A message in flight.  The [`TraceCtx`] rides the envelope so the
/// receiver can attribute the message to the sender's trace — a network
/// transport must carry [`TraceCtx::encode`]'s fixed-size header in each
/// frame to preserve this.
#[derive(Debug)]
pub(crate) struct Envelope {
    pub(crate) src: usize,
    pub(crate) tag: u64,
    pub(crate) ctx: TraceCtx,
    pub(crate) payload: Vec<u8>,
}

struct Mailbox {
    inbox: Mutex<VecDeque<Envelope>>,
    arrived: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            inbox: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
        }
    }
}

/// Per-node traffic counters.
#[derive(Debug, Default)]
pub(crate) struct TrafficCounters {
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) msgs_sent: AtomicU64,
}

/// Snapshot of one node's traffic at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    /// Payload bytes this node sent.
    pub bytes_sent: u64,
    /// Messages this node sent.
    pub msgs_sent: u64,
}

pub(crate) struct Fabric {
    mailboxes: Vec<Mailbox>,
    pub(crate) counters: Vec<TrafficCounters>,
    pub(crate) net: NetCfg,
    poisoned: AtomicBool,
}

impl Fabric {
    pub(crate) fn new(nodes: usize, net: NetCfg) -> Arc<Self> {
        Arc::new(Fabric {
            mailboxes: (0..nodes).map(|_| Mailbox::new()).collect(),
            counters: (0..nodes).map(|_| TrafficCounters::default()).collect(),
            net,
            poisoned: AtomicBool::new(false),
        })
    }

    pub(crate) fn nodes(&self) -> usize {
        self.mailboxes.len()
    }

    /// Mark the fabric broken (a node died) and wake every receiver.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        for mb in &self.mailboxes {
            let _guard = mb.inbox.lock();
            mb.arrived.notify_all();
        }
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Deliver a message from `src` to `dst`, charging the network cost to
    /// the calling (sending) thread *before* delivery.
    pub(crate) fn send(
        &self,
        src: usize,
        dst: usize,
        tag: u64,
        ctx: TraceCtx,
        payload: Vec<u8>,
    ) -> Result<(), CommError> {
        if dst >= self.mailboxes.len() {
            return Err(CommError::BadRank(dst));
        }
        if self.is_poisoned() {
            return Err(CommError::Poisoned);
        }
        // A node's message to itself is not interprocessor communication:
        // it costs nothing and is excluded from traffic counters (matching
        // collectives, whose self part never leaves the node).
        if src != dst {
            self.counters[src]
                .bytes_sent
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            self.counters[src].msgs_sent.fetch_add(1, Ordering::Relaxed);
            self.net.charge(payload.len());
        }
        let mb = &self.mailboxes[dst];
        let mut inbox = mb.inbox.lock();
        inbox.push_back(Envelope {
            src,
            tag,
            ctx,
            payload,
        });
        drop(inbox);
        mb.arrived.notify_all();
        Ok(())
    }

    /// Receive at `me` the first message matching `(src, tag)`.
    /// `src = None` accepts any source.  Blocks until a match arrives.
    /// Matching is FIFO among messages from the same source and tag.
    pub(crate) fn recv(
        &self,
        me: usize,
        src: Option<usize>,
        tag: u64,
    ) -> Result<Envelope, CommError> {
        let mb = &self.mailboxes[me];
        let mut inbox = mb.inbox.lock();
        loop {
            if let Some(pos) = inbox
                .iter()
                .position(|e| e.tag == tag && src.map(|s| s == e.src).unwrap_or(true))
            {
                return Ok(inbox.remove(pos).expect("position was valid"));
            }
            if self.is_poisoned() {
                return Err(CommError::Poisoned);
            }
            mb.arrived.wait(&mut inbox);
        }
    }

    pub(crate) fn traffic(&self, node: usize) -> NodeTraffic {
        NodeTraffic {
            bytes_sent: self.counters[node].bytes_sent.load(Ordering::Relaxed),
            msgs_sent: self.counters[node].msgs_sent.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn point_to_point_delivery() {
        let f = Fabric::new(2, NetCfg::zero());
        f.send(0, 1, 7, TraceCtx::NONE, vec![1, 2, 3]).unwrap();
        let e = f.recv(1, Some(0), 7).unwrap();
        assert_eq!(e.payload, vec![1, 2, 3]);
        assert_eq!(e.src, 0);
    }

    #[test]
    fn trace_ctx_rides_the_envelope() {
        let f = Fabric::new(2, NetCfg::zero());
        let ctx = TraceCtx {
            origin: 0,
            trace_id: 77,
            seq: 3,
        };
        f.send(0, 1, 7, ctx, vec![1]).unwrap();
        assert_eq!(f.recv(1, Some(0), 7).unwrap().ctx, ctx);
    }

    #[test]
    fn tag_matching_skips_other_tags() {
        let f = Fabric::new(2, NetCfg::zero());
        f.send(0, 1, 1, TraceCtx::NONE, vec![1]).unwrap();
        f.send(0, 1, 2, TraceCtx::NONE, vec![2]).unwrap();
        assert_eq!(f.recv(1, Some(0), 2).unwrap().payload, vec![2]);
        assert_eq!(f.recv(1, Some(0), 1).unwrap().payload, vec![1]);
    }

    #[test]
    fn any_source_matches_first_arrival() {
        let f = Fabric::new(3, NetCfg::zero());
        f.send(2, 0, 9, TraceCtx::NONE, vec![2]).unwrap();
        f.send(1, 0, 9, TraceCtx::NONE, vec![1]).unwrap();
        let e = f.recv(0, None, 9).unwrap();
        assert_eq!(e.src, 2, "FIFO across sources for ANY_SOURCE");
    }

    #[test]
    fn same_src_tag_is_fifo() {
        let f = Fabric::new(2, NetCfg::zero());
        for i in 0..10u8 {
            f.send(0, 1, 5, TraceCtx::NONE, vec![i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(f.recv(1, Some(0), 5).unwrap().payload, vec![i]);
        }
    }

    #[test]
    fn recv_blocks_until_send() {
        let f = Fabric::new(2, NetCfg::zero());
        let f2 = Arc::clone(&f);
        let h = thread::spawn(move || f2.recv(1, Some(0), 3).unwrap().payload);
        thread::sleep(Duration::from_millis(10));
        f.send(0, 1, 3, TraceCtx::NONE, vec![9]).unwrap();
        assert_eq!(h.join().unwrap(), vec![9]);
    }

    #[test]
    fn poison_wakes_receivers() {
        let f = Fabric::new(2, NetCfg::zero());
        let f2 = Arc::clone(&f);
        let h = thread::spawn(move || f2.recv(1, Some(0), 3));
        thread::sleep(Duration::from_millis(10));
        f.poison();
        assert_eq!(h.join().unwrap().unwrap_err(), CommError::Poisoned);
        assert_eq!(
            f.send(0, 1, 0, TraceCtx::NONE, vec![]).unwrap_err(),
            CommError::Poisoned
        );
    }

    #[test]
    fn bad_rank_rejected() {
        let f = Fabric::new(2, NetCfg::zero());
        assert_eq!(
            f.send(0, 5, 0, TraceCtx::NONE, vec![]).unwrap_err(),
            CommError::BadRank(5)
        );
    }

    #[test]
    fn traffic_counters_accumulate() {
        let f = Fabric::new(2, NetCfg::zero());
        f.send(0, 1, 0, TraceCtx::NONE, vec![0; 100]).unwrap();
        f.send(0, 1, 0, TraceCtx::NONE, vec![0; 50]).unwrap();
        let t = f.traffic(0);
        assert_eq!(t.bytes_sent, 150);
        assert_eq!(t.msgs_sent, 2);
        assert_eq!(f.traffic(1), NodeTraffic::default());
    }

    #[test]
    fn concurrent_receivers_different_tags() {
        // Two threads on the same node wait on different tags; both are
        // satisfied regardless of arrival order (thread-safe MPI property).
        let f = Fabric::new(2, NetCfg::zero());
        let fa = Arc::clone(&f);
        let fb = Arc::clone(&f);
        let ha = thread::spawn(move || fa.recv(1, None, 100).unwrap().payload);
        let hb = thread::spawn(move || fb.recv(1, None, 200).unwrap().payload);
        thread::sleep(Duration::from_millis(5));
        f.send(0, 1, 200, TraceCtx::NONE, vec![2]).unwrap();
        f.send(0, 1, 100, TraceCtx::NONE, vec![1]).unwrap();
        assert_eq!(ha.join().unwrap(), vec![1]);
        assert_eq!(hb.join().unwrap(), vec![2]);
    }
}
