//! Network cost model.
//!
//! The paper's cluster connects 16 nodes with a 2 Gb/s Myrinet network and a
//! thread-safe MPI.  We model the *property FG targets* — interprocessor
//! communication is a high-latency blocking operation — by charging each
//! message `latency + bytes / bandwidth` of real wall-clock sleep on the
//! sending thread.  Other stage threads on the node keep running meanwhile,
//! so FG's overlap is physically real in measurements.  Tests use
//! [`NetCfg::zero`] and run at full speed.

use std::time::Duration;

/// Cost parameters of the simulated interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetCfg {
    /// Fixed per-message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second; `f64::INFINITY` disables the
    /// per-byte cost.
    pub bytes_per_sec: f64,
}

impl NetCfg {
    /// A free network: no latency, infinite bandwidth (for tests).
    pub fn zero() -> Self {
        NetCfg {
            latency: Duration::ZERO,
            bytes_per_sec: f64::INFINITY,
        }
    }

    /// A network with the given latency and bandwidth.
    pub fn new(latency: Duration, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        NetCfg {
            latency,
            bytes_per_sec,
        }
    }

    /// Wall-clock cost of transferring `bytes`.
    pub fn cost(&self, bytes: usize) -> Duration {
        let transfer = if self.bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
        } else {
            Duration::ZERO
        };
        self.latency + transfer
    }

    /// Charge the cost of transferring `bytes` to the calling thread.
    pub fn charge(&self, bytes: usize) {
        let d = self.cost(bytes);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

impl Default for NetCfg {
    fn default() -> Self {
        NetCfg::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_free() {
        let c = NetCfg::zero();
        assert_eq!(c.cost(1 << 20), Duration::ZERO);
    }

    #[test]
    fn cost_adds_latency_and_transfer() {
        let c = NetCfg::new(Duration::from_millis(1), 1_000_000.0);
        // 1ms latency + 500_000 bytes / 1 MB/s = 0.5s
        let d = c.cost(500_000);
        assert!((d.as_secs_f64() - 0.501).abs() < 1e-9, "{d:?}");
    }

    #[test]
    fn infinite_bandwidth_charges_latency_only() {
        let c = NetCfg {
            latency: Duration::from_millis(2),
            bytes_per_sec: f64::INFINITY,
        };
        assert_eq!(c.cost(usize::MAX), Duration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = NetCfg::new(Duration::ZERO, 0.0);
    }
}
