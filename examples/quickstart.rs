//! Quickstart: a single linear FG pipeline hiding disk latency.
//!
//! Builds the pipeline of Figure 2 — `read → process → write` with an
//! implicit source and sink — over a simulated disk whose operations cost
//! real wall-clock time, then shows how much latency the pipeline hid
//! compared with running the same operations serially.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use fg::core::{map_stage, PipelineCfg, Program, Rounds};
use fg::pdm::{DiskCfg, SimDisk};

const BLOCKS: u64 = 64;
const BLOCK_BYTES: usize = 32 * 1024;

/// Real CPU work comparable to the block's I/O time: several xor-rotate
/// passes over the block (a stand-in for the sort/permute stages of the
/// paper's programs).
fn process_block(data: &mut [u8]) {
    for _ in 0..280 {
        let mut acc = 0u8;
        for b in data.iter_mut() {
            acc = acc.rotate_left(1) ^ *b;
            *b = acc;
        }
    }
}

fn main() {
    // A disk that costs 0.5 ms per operation plus 1 MiB/s of transfer time.
    let disk = SimDisk::new(DiskCfg::new(
        Duration::from_micros(500),
        4.0 * 1024.0 * 1024.0,
    ));
    disk.load("in", vec![7u8; BLOCKS as usize * BLOCK_BYTES]);

    // --- the FG way: three asynchronous stages, four recycled buffers ---
    let mut prog = Program::new("quickstart");
    prog.enable_tracing();

    let d = Arc::clone(&disk);
    let read = prog.add_stage(
        "read",
        map_stage(move |buf, _ctx| {
            d.read_at("in", buf.round() * BLOCK_BYTES as u64, buf.space_mut())
                .expect("read");
            buf.fill_to_capacity();
            Ok(())
        }),
    );

    let process = prog.add_stage(
        "process",
        map_stage(|buf, _ctx| {
            process_block(buf.filled_mut());
            Ok(())
        }),
    );

    let d = Arc::clone(&disk);
    let write = prog.add_stage(
        "write",
        map_stage(move |buf, _ctx| {
            d.write_at("out", buf.round() * BLOCK_BYTES as u64, buf.filled())
                .expect("write");
            Ok(())
        }),
    );

    let cfg = PipelineCfg::new("p", 4, BLOCK_BYTES).rounds(Rounds::Count(BLOCKS));
    prog.add_pipeline(cfg, &[read, process, write]).unwrap();

    let report = prog.run().expect("pipeline run");

    // --- the serial way: same operations, one at a time ---
    let disk2 = SimDisk::new(disk.cfg());
    disk2.load("in", vec![7u8; BLOCKS as usize * BLOCK_BYTES]);
    let t0 = Instant::now();
    let mut buf = vec![0u8; BLOCK_BYTES];
    for b in 0..BLOCKS {
        disk2
            .read_at("in", b * BLOCK_BYTES as u64, &mut buf)
            .unwrap();
        process_block(&mut buf);
        disk2.write_at("out", b * BLOCK_BYTES as u64, &buf).unwrap();
    }
    let serial = t0.elapsed();

    println!("processed {BLOCKS} blocks of {BLOCK_BYTES} bytes");
    println!(
        "pipelined (FG): {:>8.1} ms",
        report.wall.as_secs_f64() * 1e3
    );
    println!("serial:         {:>8.1} ms", serial.as_secs_f64() * 1e3);
    println!(
        "latency hidden: {:.2}x speedup, overlap factor {:.2}",
        serial.as_secs_f64() / report.wall.as_secs_f64(),
        report.overlap_factor()
    );
    println!("\nper-stage breakdown:");
    print!("{}", report.render());
    println!("\ntimeline:");
    print!("{}", report.render_gantt(64));
}
