//! Out-of-core sorting on a simulated cluster: the paper's headline
//! experiment in miniature.
//!
//! Provisions a 8-node cluster with a Poisson-keyed dataset, runs both
//! dsort (the two-pass distribution sort built on FG's multiple pipelines)
//! and csort (the three-pass columnsort baseline on single linear
//! pipelines), verifies both outputs, and prints the per-pass comparison.
//!
//! ```text
//! cargo run --release --example out_of_core_sort
//! ```

use fg::sort::config::SortConfig;
use fg::sort::csort::run_csort;
use fg::sort::dsort::run_dsort;
use fg::sort::input::provision;
use fg::sort::keygen::KeyDist;
use fg::sort::verify::{verify_output, Strictness};

fn main() {
    let mut cfg = SortConfig::experiment_default(8, 8192);
    cfg.dist = KeyDist::Poisson;

    println!(
        "sorting {} records x {} bytes across {} nodes ({} KiB total), {} keys",
        cfg.total_records(),
        cfg.record.record_bytes,
        cfg.nodes,
        cfg.total_bytes() >> 10,
        cfg.dist.label(),
    );

    // --- dsort ---
    let disks = provision(&cfg);
    let d = run_dsort(&cfg, &disks).expect("dsort");
    verify_output(&cfg, &disks, Strictness::Exact).expect("dsort output verifies");
    println!("\ndsort (two passes + sampling), output verified:");
    println!("  sampling {:>7.1} ms", d.sampling.as_secs_f64() * 1e3);
    println!(
        "  pass 1   {:>7.1} ms  (partition + distribute)",
        d.pass1.as_secs_f64() * 1e3
    );
    println!(
        "  pass 2   {:>7.1} ms  (merge + load-balance + stripe)",
        d.pass2.as_secs_f64() * 1e3
    );
    println!("  total    {:>7.1} ms", d.total().as_secs_f64() * 1e3);
    println!("  partition sizes: {:?}", d.partition_records);
    println!("  runs merged per node: {:?}", d.runs_per_node);

    // --- csort ---
    let disks = provision(&cfg);
    let c = run_csort(&cfg, &disks).expect("csort");
    verify_output(&cfg, &disks, Strictness::Exact).expect("csort output verifies");
    println!(
        "\ncsort (three passes over an r={} x s={} matrix), output verified:",
        c.matrix.r, c.matrix.s
    );
    for (i, p) in c.pass.iter().enumerate() {
        println!("  pass {}   {:>7.1} ms", i + 1, p.as_secs_f64() * 1e3);
    }
    println!("  total    {:>7.1} ms", c.total.as_secs_f64() * 1e3);

    println!(
        "\ndsort / csort = {:.2}%  (the paper reports 74.26%-85.06%)",
        100.0 * d.total().as_secs_f64() / c.total.as_secs_f64()
    );
}
