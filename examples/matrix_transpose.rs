//! Out-of-core matrix transpose — the other classic PDM workload (§VIII).
//!
//! Transposes a matrix striped across a simulated cluster in one pass of
//! `read → tilt → exchange → write` pipelines, then spot-checks the result.
//!
//! ```text
//! cargo run --release --example matrix_transpose
//! ```

use fg_apps::transpose::{provision, run_transpose, verify_transpose, TransposeConfig};
use fg_pdm::DiskCfg;
use std::time::Duration;

fn main() {
    let mut cfg = TransposeConfig::test_default(6, 384, 256);
    cfg.tile_rows = 16;
    cfg.block_bytes = 2048;
    // A gentle cost model so the pass takes visible time.
    cfg.disk = DiskCfg::new(Duration::from_micros(50), 8.0 * 1024.0 * 1024.0);

    // Element (i, j) carries its own coordinates, so verification is exact.
    let element = |i: usize, j: usize| (((i as u64) << 32) | j as u64).to_le_bytes().to_vec();

    println!(
        "transposing a {}x{} matrix ({} KiB) across {} nodes, {} bands of {} rows",
        cfg.rows,
        cfg.cols,
        cfg.total_bytes() >> 10,
        cfg.nodes,
        cfg.rows / cfg.tile_rows,
        cfg.tile_rows,
    );

    let disks = provision(&cfg, element);
    let report = run_transpose(&cfg, &disks).expect("transpose");
    verify_transpose(&cfg, &disks, element).expect("output is the exact transpose");

    println!(
        "one pass: {:.1} ms; {} KiB sent over the interconnect",
        report.pass.as_secs_f64() * 1e3,
        report.bytes_sent.iter().sum::<u64>() >> 10,
    );
    println!(
        "verified: output[j][i] == input[i][j] for all {} elements",
        cfg.rows * cfg.cols
    );
}
