//! Intersecting pipelines with virtual stages: merging many sorted event
//! streams into one timeline.
//!
//! The shape of Figure 5: k vertical pipelines (one per input stream) feed
//! a common merge stage that emits into a single horizontal pipeline.  The
//! vertical `fetch` stages are *virtual* — FG runs all k of them (plus
//! their sources and sinks) on three shared threads, so the program scales
//! to hundreds of streams without hundreds of threads.
//!
//! ```text
//! cargo run --release --example merge_streams
//! ```

use std::sync::{Arc, Mutex};

use fg::core::{map_stage, Buffer, PipelineCfg, Program, Rounds, Stage, StageCtx};

const STREAMS: usize = 48;
const EVENTS_PER_STREAM: usize = 500;
const EVENT_BYTES: usize = 16; // 8-byte timestamp + 8-byte payload

/// A sorted stream of synthetic (timestamp, payload) events.
fn make_stream(lane: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(EVENTS_PER_STREAM * EVENT_BYTES);
    let mut ts = (lane as u64) * 17 % 101;
    for i in 0..EVENTS_PER_STREAM {
        ts += 1 + ((lane as u64 * 31 + i as u64 * 7) % 13);
        out.extend_from_slice(&ts.to_le_bytes());
        out.extend_from_slice(&((lane as u64) << 32 | i as u64).to_le_bytes());
    }
    out
}

struct MergeStage;

impl Stage for MergeStage {
    fn run(&mut self, ctx: &mut StageCtx) -> fg::core::Result<()> {
        let pids: Vec<_> = ctx.pipelines().collect();
        let (verticals, horizontal) = pids.split_at(pids.len() - 1);
        let verticals = verticals.to_vec();
        let horizontal = horizontal[0];

        // Pull the next non-empty buffer of a vertical, or None at its end.
        fn next_head(
            ctx: &mut StageCtx,
            v: fg::core::PipelineId,
        ) -> fg::core::Result<Option<(Buffer, usize)>> {
            loop {
                match ctx.accept_from(v)? {
                    None => return Ok(None),
                    Some(b) if b.is_empty() => ctx.discard(b)?,
                    Some(b) => return Ok(Some((b, 0))),
                }
            }
        }
        let ts_of = |b: &Buffer, off: usize| {
            u64::from_le_bytes(b.filled()[off..off + 8].try_into().expect("ts"))
        };

        let mut heads = Vec::new();
        for &v in &verticals {
            heads.push(next_head(ctx, v)?);
        }
        let mut out = ctx
            .accept_from(horizontal)?
            .expect("horizontal supplies buffers");
        out.clear();
        loop {
            // Smallest timestamp among stream heads.
            let mut best: Option<(usize, u64)> = None;
            for (i, h) in heads.iter().enumerate() {
                if let Some((b, off)) = h {
                    let ts = ts_of(b, *off);
                    if best.map(|(_, t)| ts < t).unwrap_or(true) {
                        best = Some((i, ts));
                    }
                }
            }
            let (i, _) = match best {
                Some(b) => b,
                None => break,
            };
            let (b, off) = heads[i].take().expect("head");
            let event = b.filled()[off..off + EVENT_BYTES].to_vec();
            if out.remaining() < EVENT_BYTES {
                ctx.convey(out)?;
                out = ctx
                    .accept_from(horizontal)?
                    .expect("horizontal stopped early");
                out.clear();
            }
            out.append(&event);
            let noff = off + EVENT_BYTES;
            if noff < b.len() {
                heads[i] = Some((b, noff));
            } else {
                ctx.discard(b)?;
                heads[i] = next_head(ctx, verticals[i])?;
            }
        }
        if out.is_empty() {
            ctx.discard(out)?;
        } else {
            ctx.convey(out)?;
        }
        ctx.stop(horizontal)?;
        Ok(())
    }
}

fn main() {
    let streams: Vec<Vec<u8>> = (0..STREAMS).map(make_stream).collect();
    let vertical_buf = 32 * EVENT_BYTES;

    let mut prog = Program::new("merge-streams");

    // One *virtual* fetch stage serves every stream: FG creates a single
    // thread and a single shared input queue for all 48 lanes.
    let streams2 = streams.clone();
    let mut cursors = vec![0usize; STREAMS];
    let fetch = prog.add_virtual_stage(
        "fetch",
        map_stage(move |buf: &mut Buffer, ctx: &mut StageCtx| {
            let lane = ctx.lane(buf.pipeline())?;
            let src = &streams2[lane];
            let take = buf.capacity().min(src.len() - cursors[lane]);
            buf.copy_from(&src[cursors[lane]..cursors[lane] + take]);
            cursors[lane] += take;
            Ok(())
        }),
    );

    let merge = prog.add_stage("merge", Box::new(MergeStage));

    let merged = Arc::new(Mutex::new(Vec::<u8>::new()));
    let m2 = Arc::clone(&merged);
    let collect = prog.add_stage(
        "collect",
        map_stage(move |buf, _ctx| {
            m2.lock().unwrap().extend_from_slice(buf.filled());
            Ok(())
        }),
    );

    for (lane, stream) in streams.iter().enumerate() {
        let rounds = stream.len().div_ceil(vertical_buf) as u64;
        prog.add_pipeline(
            PipelineCfg::new(format!("stream{lane}"), 2, vertical_buf)
                .rounds(Rounds::Count(rounds)),
            &[fetch, merge],
        )
        .unwrap();
    }
    prog.add_pipeline(
        PipelineCfg::new("timeline", 3, 256 * EVENT_BYTES).rounds(Rounds::UntilStopped),
        &[merge, collect],
    )
    .unwrap();

    let report = prog.run().expect("merge program");
    let merged = merged.lock().unwrap();

    let total_events = merged.len() / EVENT_BYTES;
    let mut prev = 0u64;
    let mut ordered = true;
    for ev in merged.chunks_exact(EVENT_BYTES) {
        let ts = u64::from_le_bytes(ev[..8].try_into().unwrap());
        ordered &= ts >= prev;
        prev = ts;
    }
    println!(
        "merged {STREAMS} sorted streams x {EVENTS_PER_STREAM} events -> {total_events} events"
    );
    println!("globally ordered: {ordered}");
    println!(
        "threads spawned: {} (vs {} if every stream had its own fetch/source/sink threads)",
        report.threads_spawned,
        3 * STREAMS + 4,
    );
    assert!(ordered);
    assert_eq!(total_events, STREAMS * EVENTS_PER_STREAM);
}
