//! Disjoint pipelines for unbalanced communication (Figure 4).
//!
//! Each node of a simulated 4-node cluster runs two disjoint FG pipelines:
//! a *send* pipeline that scatters locally generated items to
//! data-dependent destinations, and a *receive* pipeline that collects
//! whatever arrives.  Destinations are skewed — node 0 receives ~70% of
//! all traffic — so each node's send and receive rates differ wildly,
//! which is exactly the situation a single balanced pipeline cannot
//! express (§I, §IV).
//!
//! ```text
//! cargo run --release --example unbalanced_comm
//! ```

use fg::cluster::{Cluster, ClusterCfg, ClusterError};
use fg::core::{map_stage, PipelineCfg, Program, Rounds, Stage, StageCtx};

const NODES: usize = 4;
const BLOCKS_PER_NODE: u64 = 32;
const BLOCK_BYTES: usize = 4096;
const TAG: u64 = 9;
const MSG_DATA: u8 = 0;
const MSG_DONE: u8 = 1;

fn main() {
    let run = Cluster::run(ClusterCfg::zero_cost(NODES), |node| {
        let rank = node.rank();
        let nodes = node.nodes();
        let comm = node.comm().clone();

        let mut prog = Program::new(format!("node{rank}"));

        // --- send pipeline: acquire -> send ---
        let acquire = prog.add_stage(
            "acquire",
            map_stage(move |buf, _ctx| {
                // Synthesize a block of data.
                let round = buf.round();
                for (i, b) in buf.space_mut().iter_mut().enumerate() {
                    *b = ((round as usize * 31 + i * 7) % 251) as u8;
                }
                buf.fill_to_capacity();
                Ok(())
            }),
        );
        let comm_tx = comm.clone();
        let send = prog.add_stage(
            "send",
            Box::new(move |ctx: &mut StageCtx| {
                while let Some(buf) = ctx.accept()? {
                    // Destination skew: 70% of every node's blocks go to
                    // node 0 (the hot receiver); the rest round-robin.
                    let dest = if buf.round() % 10 < 7 {
                        0
                    } else {
                        (rank + 1 + buf.round() as usize) % nodes
                    };
                    let mut payload = Vec::with_capacity(1 + buf.len());
                    payload.push(MSG_DATA);
                    payload.extend_from_slice(buf.filled());
                    comm_tx.send(dest, TAG, payload).map_err(to_fg)?;
                    ctx.convey(buf)?;
                }
                for dst in 0..nodes {
                    comm_tx.send(dst, TAG, vec![MSG_DONE]).map_err(to_fg)?;
                }
                Ok(())
            }) as Box<dyn Stage>,
        );

        // --- receive pipeline: receive -> save ---
        let comm_rx = comm.clone();
        let receive = prog.add_stage(
            "receive",
            Box::new(move |ctx: &mut StageCtx| {
                let pid = ctx.pipelines().next().expect("receive pipeline");
                let mut dones = 0;
                let mut received = 0u64;
                while dones < nodes {
                    let mut buf = match ctx.accept()? {
                        Some(b) => b,
                        None => return Ok(()),
                    };
                    buf.clear();
                    while dones < nodes && buf.remaining() >= BLOCK_BYTES {
                        let msg = comm_rx.recv(None, TAG).map_err(to_fg)?;
                        match msg.payload[0] {
                            MSG_DONE => dones += 1,
                            _ => {
                                buf.append(&msg.payload[1..]);
                                received += 1;
                            }
                        }
                    }
                    buf.meta = received;
                    if buf.is_empty() {
                        ctx.discard(buf)?;
                    } else {
                        ctx.convey(buf)?;
                    }
                }
                ctx.stop(pid)?;
                Ok(())
            }) as Box<dyn Stage>,
        );
        let saved = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let saved2 = std::sync::Arc::clone(&saved);
        let save = prog.add_stage(
            "save",
            map_stage(move |buf, _ctx| {
                saved2.fetch_add(
                    (buf.len() / BLOCK_BYTES) as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                Ok(())
            }),
        );

        // Note the differing pool shapes: many small send buffers, fewer
        // large receive buffers (§IV: "the number of buffers and their
        // sizes can differ between the two pipelines").
        prog.add_pipeline(
            PipelineCfg::new("send", 4, BLOCK_BYTES).rounds(Rounds::Count(BLOCKS_PER_NODE)),
            &[acquire, send],
        )
        .map_err(|e| ClusterError::Node {
            rank,
            message: e.to_string(),
        })?;
        prog.add_pipeline(
            PipelineCfg::new("recv", 2, 4 * BLOCK_BYTES).rounds(Rounds::UntilStopped),
            &[receive, save],
        )
        .map_err(|e| ClusterError::Node {
            rank,
            message: e.to_string(),
        })?;

        prog.run().map_err(|e| ClusterError::Node {
            rank,
            message: e.to_string(),
        })?;
        Ok(saved.load(std::sync::atomic::Ordering::Relaxed))
    })
    .expect("cluster run");

    println!("blocks received per node (sent {BLOCKS_PER_NODE} each):");
    for (rank, blocks) in run.results.iter().enumerate() {
        println!(
            "  node {rank}: {blocks:>3} blocks  {}",
            "#".repeat(*blocks as usize / 2)
        );
    }
    let total: u64 = run.results.iter().sum();
    assert_eq!(total, NODES as u64 * BLOCKS_PER_NODE);
    println!(
        "total conserved: {total} blocks; receive rates differ per node, \
         yet every pipeline progressed independently"
    );
}

fn to_fg(e: fg::cluster::CommError) -> fg::core::FgError {
    fg::core::FgError::Stage {
        stage: "comm".into(),
        message: e.to_string(),
    }
}
