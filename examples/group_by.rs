//! Out-of-core group-by aggregation — FG beyond sorting (§VIII).
//!
//! Counts the occurrences of every key in a cluster-wide dataset in a
//! single pass, using the same disjoint send/receive pipeline shape as
//! dsort's pass 1 with an in-block combiner.
//!
//! ```text
//! cargo run --release --example group_by
//! ```

use fg::sort::config::SortConfig;
use fg::sort::input::provision;
use fg::sort::keygen::KeyDist;
use fg_apps::groupby::{read_counts, run_groupby};

fn main() {
    let mut cfg = SortConfig::experiment_default(8, 8192);
    cfg.dist = KeyDist::Poisson; // ~a dozen distinct keys, heavy duplication

    println!(
        "group-by-count over {} records on {} nodes ({} keys)",
        cfg.total_records(),
        cfg.nodes,
        cfg.dist.label()
    );

    let disks = provision(&cfg);
    let report = run_groupby(&cfg, &disks).expect("groupby");

    println!(
        "one pass: {:.1} ms; {} records aggregated",
        report.pass.as_secs_f64() * 1e3,
        report.total_records
    );
    let mut all: Vec<(u64, u64)> = disks.iter().flat_map(read_counts).collect();
    all.sort_unstable();
    println!(
        "\nkey  count (Poisson λ=1 over {} draws)",
        report.total_records
    );
    for (key, count) in &all {
        println!(
            "{key:>3}  {count:>8}  {}",
            "#".repeat((count * 60 / report.total_records) as usize)
        );
    }
    let total: u64 = all.iter().map(|(_, c)| c).sum();
    assert_eq!(total, report.total_records);
    println!("\ndistinct keys per node: {:?}", report.distinct_per_node);
}
