//! Fork–join: parallelizing a slow stage with replicated copies.
//!
//! One compute stage dominates this pipeline.  Declaring it *replicated*
//! makes FG run n copies on n threads sharing the stage's queues, so
//! buffers fan out to whichever copy is free; a `reorder_stage` downstream
//! restores round order (FG's join).
//!
//! ```text
//! cargo run --release --example fork_join
//! ```

use std::time::{Duration, Instant};

use fg::core::{map_stage, reorder_stage, PipelineCfg, Program, Rounds};

const ROUNDS: u64 = 120;
const BLOCK: usize = 8 * 1024;

fn build(replicas: usize) -> Program {
    let mut prog = Program::new(format!("forkjoin-{replicas}"));
    let fill = prog.add_stage(
        "fill",
        map_stage(|buf, _| {
            let round = buf.round();
            for (i, b) in buf.space_mut().iter_mut().enumerate() {
                *b = (round as usize + i) as u8;
            }
            buf.fill_to_capacity();
            Ok(())
        }),
    );
    // The hot stage: a deliberately slow transform (~2 ms per block).
    let work = prog.add_replicated_stage("work", replicas, |_| {
        map_stage(|buf, _| {
            std::thread::sleep(Duration::from_millis(2));
            for b in buf.filled_mut() {
                *b = b.wrapping_mul(31).wrapping_add(7);
            }
            Ok(())
        })
    });
    let join = prog.add_stage("join", reorder_stage());
    let check = prog.add_stage(
        "check",
        map_stage({
            let mut expected = 0u64;
            move |buf, _| {
                assert_eq!(buf.round(), expected, "join must restore order");
                expected += 1;
                Ok(())
            }
        }),
    );
    prog.add_pipeline(
        PipelineCfg::new("p", 8, BLOCK).rounds(Rounds::Count(ROUNDS)),
        &[fill, work, join, check],
    )
    .unwrap();
    prog
}

fn main() {
    for replicas in [1usize, 2, 4] {
        let t0 = Instant::now();
        let report = build(replicas).run().expect("run");
        println!(
            "{replicas} replica(s): {:>7.1} ms wall, {} threads",
            t0.elapsed().as_secs_f64() * 1e3,
            report.threads_spawned
        );
    }
    println!("\n(the ~2 ms/block stage is the bottleneck: replicas divide it)");
}
