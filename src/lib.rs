//! Umbrella crate re-exporting the full FG reproduction:
//!
//! * [`core`] — the FG programming environment (pipelines, stages,
//!   buffers, disjoint/intersecting/virtual pipelines).
//! * [`cluster`] — the simulated distributed-memory cluster and
//!   its thread-safe MPI-like communicator.
//! * [`pdm`] — the simulated Parallel Disk Model storage substrate.
//! * [`sort`] — the out-of-core sorting programs built on FG:
//!   `dsort` (distribution sort) and `csort` (columnsort).
//! * [`apps`] — further out-of-core algorithms on FG (group-by
//!   aggregation).
//!
//! The observability layer's entry points are re-exported at the top
//! level: install an [`Observer`] (or the bundled [`MetricsObserver`])
//! and a [`MetricsRegistry`] on a program, then export its
//! [`Report`](core::Report) as JSON, a terminal dashboard, or a Chrome
//! trace.

pub use fg_apps as apps;
pub use fg_cluster as cluster;
pub use fg_core as core;
pub use fg_pdm as pdm;
pub use fg_sort as sort;

pub use fg_core::{
    CountingObserver, Json, MetricsObserver, MetricsRegistry, MetricsSnapshot, Observer,
};
