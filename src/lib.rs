//! Umbrella crate re-exporting the full FG reproduction:
//!
//! * [`core`] — the FG programming environment (pipelines, stages,
//!   buffers, disjoint/intersecting/virtual pipelines).
//! * [`cluster`] — the simulated distributed-memory cluster and
//!   its thread-safe MPI-like communicator.
//! * [`pdm`] — the simulated Parallel Disk Model storage substrate.
//! * [`sort`] — the out-of-core sorting programs built on FG:
//!   `dsort` (distribution sort) and `csort` (columnsort).
//! * [`apps`] — further out-of-core algorithms on FG (group-by
//!   aggregation).

pub use fg_apps as apps;
pub use fg_cluster as cluster;
pub use fg_core as core;
pub use fg_pdm as pdm;
pub use fg_sort as sort;
